//! The SplitFS operation log (paper §3.3, "Optimized logging").
//!
//! In strict (and sync, for appends) mode, U-Split records each staged data
//! operation in a per-instance operation log so that a crash before the
//! next `fsync`/relink can be recovered.  The log is a pre-allocated,
//! zero-initialized file on the kernel file system that U-Split maps once
//! and then writes with non-temporal stores — no kernel involvement per
//! entry.  The optimizations the paper describes are all present:
//!
//! * one 64 B entry and **one** fence per operation (NOVA needs two cache
//!   lines and two fences),
//! * a 4 B checksum inside the entry distinguishes valid from torn entries,
//!   so no second fence is needed to persist a tail pointer,
//! * the tail lives only in DRAM and is advanced with an atomic
//!   fetch-and-add so concurrent threads can reserve slots without locks,
//! * the log is zeroed at initialization; recovery treats any non-zero,
//!   checksum-valid 64 B slot as a potentially valid entry,
//! * when the log fills up, the owner checkpoints (relinks every open file)
//!   and re-zeroes the log.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use kernelfs::DaxMapping;
use pmem::{PersistMode, PmemDevice, TimeCategory};
use vfs::util::checksum32;
use vfs::{FsError, FsResult};

/// Size of one log entry.
pub const ENTRY_SIZE: u64 = 64;

/// Magic tag in every entry.
const ENTRY_MAGIC: u16 = 0x4F4C; // "OL"

/// The kind of a log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogOp {
    /// Data was written to a staging file and must be moved to the target
    /// file (by relink) if a crash happens before the next `fsync`.
    StagedWrite,
    /// Every staged write for `target_ino` with sequence number ≤ `seq` has
    /// been relinked into the target and must not be replayed.
    Invalidate,
}

impl LogOp {
    fn tag(self) -> u8 {
        match self {
            LogOp::StagedWrite => 1,
            LogOp::Invalidate => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(LogOp::StagedWrite),
            2 => Some(LogOp::Invalidate),
            _ => None,
        }
    }
}

/// A decoded operation-log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// Entry kind.
    pub op: LogOp,
    /// Target file inode.
    pub target_ino: u64,
    /// Offset within the target file the staged data belongs at.
    pub target_offset: u64,
    /// Length of the staged data in bytes (for `Invalidate`: unused).
    pub len: u64,
    /// Staging file inode holding the data.
    pub staging_ino: u64,
    /// Offset of the data within the staging file.
    pub staging_offset: u64,
    /// Monotonic sequence number assigned by the log.
    pub seq: u64,
}

impl LogEntry {
    /// Serializes the entry into its 64-byte on-log form.
    pub fn encode(&self) -> [u8; ENTRY_SIZE as usize] {
        let mut buf = [0u8; ENTRY_SIZE as usize];
        buf[0..2].copy_from_slice(&ENTRY_MAGIC.to_le_bytes());
        buf[2] = self.op.tag();
        // buf[3] reserved
        buf[4..12].copy_from_slice(&self.target_ino.to_le_bytes());
        buf[12..20].copy_from_slice(&self.target_offset.to_le_bytes());
        buf[20..28].copy_from_slice(&self.len.to_le_bytes());
        buf[28..36].copy_from_slice(&self.staging_ino.to_le_bytes());
        buf[36..44].copy_from_slice(&self.staging_offset.to_le_bytes());
        buf[44..52].copy_from_slice(&self.seq.to_le_bytes());
        let crc = checksum32(&buf[..60]);
        buf[60..64].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes a 64-byte slot.  Returns `None` for all-zero slots (never
    /// written), torn entries (checksum mismatch) and unknown tags.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < ENTRY_SIZE as usize {
            return None;
        }
        if buf.iter().all(|&b| b == 0) {
            return None;
        }
        let magic = u16::from_le_bytes([buf[0], buf[1]]);
        if magic != ENTRY_MAGIC {
            return None;
        }
        let crc_stored = u32::from_le_bytes([buf[60], buf[61], buf[62], buf[63]]);
        if checksum32(&buf[..60]) != crc_stored {
            return None;
        }
        let read_u64 = |o: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[o..o + 8]);
            u64::from_le_bytes(b)
        };
        Some(Self {
            op: LogOp::from_tag(buf[2])?,
            target_ino: read_u64(4),
            target_offset: read_u64(12),
            len: read_u64(20),
            staging_ino: read_u64(28),
            staging_offset: read_u64(36),
            seq: read_u64(44),
        })
    }
}

/// The operation log of one U-Split instance.
#[derive(Debug)]
pub struct OpLog {
    device: Arc<PmemDevice>,
    /// Mapping of the log file.  Behind a lock because the log can *grow*:
    /// when the log fills while a checkpoint cannot safely run (concurrent
    /// writers hold their file locks), the owner extends the file and
    /// swaps in a larger mapping instead of blocking — see
    /// [`crate::fs::SplitFs`]'s log-full handling.
    mapping: RwLock<DaxMapping>,
    size: AtomicU64,
    /// DRAM-only tail: byte offset of the next free slot.
    tail: AtomicU64,
    /// DRAM-only high-water mark: one past the last byte ever written since
    /// the previous reset.  Truncation only needs to re-zero this prefix,
    /// which turns the stop-the-world whole-log zeroing into work
    /// proportional to actual log usage.
    high_water: AtomicU64,
    /// Monotonic sequence counter.
    seq: AtomicU64,
}

impl OpLog {
    /// Wraps an already-mapped, zeroed log file of `size` bytes.
    pub fn new(device: Arc<PmemDevice>, mapping: DaxMapping, size: u64) -> Self {
        Self {
            device,
            mapping: RwLock::new(mapping),
            size: AtomicU64::new(size),
            tail: AtomicU64::new(0),
            // A fresh instance wraps a mapping of unknown content (it may
            // hold a previous incarnation's entries), so the first reset
            // must zero everything; only after that does the mark tighten
            // to the actually-used prefix.
            high_water: AtomicU64::new(size),
            seq: AtomicU64::new(1),
        }
    }

    /// Number of entries currently in the log.
    pub fn entries_used(&self) -> u64 {
        self.tail.load(Ordering::Relaxed) / ENTRY_SIZE
    }

    /// Whether an append would not fit.
    pub fn is_full(&self) -> bool {
        self.tail.load(Ordering::Relaxed) + ENTRY_SIZE > self.size()
    }

    /// Current capacity of the log in bytes (grows on demand).
    pub fn size(&self) -> u64 {
        self.size.load(Ordering::Relaxed)
    }

    /// Installs a larger mapping after the log file was extended.  The
    /// new mapping must cover `[0, new_size)` of the same file, and the
    /// caller must have **zeroed the extension** `[size, new_size)` first —
    /// the kernel allocator recycles freed blocks without zeroing, and a
    /// checksum-valid ghost entry in the extension would be replayed by
    /// recovery.  Shrinking is not supported.  Safe under concurrent
    /// appends: a reservation past the old size fails with `NoSpace` and
    /// is retried by the caller after the growth lands.
    pub fn grow(&self, mapping: DaxMapping, new_size: u64) {
        let mut m = self.mapping.write();
        if new_size <= self.size() {
            return;
        }
        *m = mapping;
        self.size.store(new_size, Ordering::Relaxed);
    }

    /// Fraction of the log currently in use, in `[0, 1]`.  The maintenance
    /// daemon checkpoints in the background once this passes its configured
    /// threshold so the foreground never observes [`FsError::NoSpace`].
    pub fn utilization(&self) -> f64 {
        let size = self.size();
        self.tail.load(Ordering::Relaxed).min(size) as f64 / size.max(1) as f64
    }

    /// Reserves the next sequence number.
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Appends an entry: one 64 B non-temporal write plus one fence.
    ///
    /// Returns [`FsError::NoSpace`] when the log is full; the caller is
    /// expected to checkpoint (relink all open files) and [`OpLog::reset`]
    /// before retrying.
    pub fn append(&self, entry: &LogEntry) -> FsResult<()> {
        let cost = self.device.cost().clone();
        // Reserve a slot with a DRAM-only CAS/fetch-add (the optimization
        // over persisting a tail pointer).
        let offset = self.tail.fetch_add(ENTRY_SIZE, Ordering::Relaxed);
        if offset + ENTRY_SIZE > self.size() {
            // Roll the reservation back so a later checkpoint starts clean.
            self.tail.fetch_sub(ENTRY_SIZE, Ordering::Relaxed);
            return Err(FsError::NoSpace);
        }
        self.device.charge_software(cost.usplit_log_entry_cpu_ns);
        let (dev_off, _) = self
            .mapping
            .read()
            .translate(offset)
            .ok_or_else(|| FsError::Io("operation log mapping hole".into()))?;
        let bytes = entry.encode();
        self.device.write(
            dev_off,
            &bytes,
            PersistMode::NonTemporal,
            TimeCategory::OpLog,
        );
        self.device.fence(TimeCategory::OpLog);
        self.high_water
            .fetch_max(offset + ENTRY_SIZE, Ordering::Relaxed);
        Ok(())
    }

    /// Appends several entries under **one** fence (group commit).
    ///
    /// The slots are reserved with a single fetch-and-add, every entry is
    /// written with non-temporal stores, and one fence makes the whole
    /// group durable together.  Callers must only use this for entries
    /// whose durability may land together — SplitFS uses it for the
    /// `Invalidate` markers a batched relink produces, which are an
    /// optimization and may trail the relink itself.
    ///
    /// Returns [`FsError::NoSpace`] (reserving nothing) when the group does
    /// not fit.
    pub fn append_batch(&self, entries: &[LogEntry]) -> FsResult<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let cost = self.device.cost().clone();
        let need = ENTRY_SIZE * entries.len() as u64;
        let offset = self.tail.fetch_add(need, Ordering::Relaxed);
        if offset + need > self.size() {
            self.tail.fetch_sub(need, Ordering::Relaxed);
            return Err(FsError::NoSpace);
        }
        for (i, entry) in entries.iter().enumerate() {
            self.device.charge_software(cost.usplit_log_entry_cpu_ns);
            let slot = offset + ENTRY_SIZE * i as u64;
            let (dev_off, _) = self
                .mapping
                .read()
                .translate(slot)
                .ok_or_else(|| FsError::Io("operation log mapping hole".into()))?;
            self.device.write(
                dev_off,
                &entry.encode(),
                PersistMode::NonTemporal,
                TimeCategory::OpLog,
            );
        }
        self.device.fence(TimeCategory::OpLog);
        self.high_water.fetch_max(offset + need, Ordering::Relaxed);
        self.device.stats().add_oplog_group_commit();
        Ok(())
    }

    /// Zeroes the used prefix of the log and resets the DRAM tail
    /// (checkpoint, §3.3).  Only the bytes up to the high-water mark are
    /// re-zeroed: slots past it were never written since the last reset, so
    /// recovery already treats them as empty.
    pub fn reset(&self) {
        let used = self.high_water.load(Ordering::Relaxed).min(self.size());
        let mapping = self.mapping.read();
        Self::zero_range(&self.device, &mapping, 0, used);
        self.high_water.store(0, Ordering::Relaxed);
        self.tail.store(0, Ordering::Relaxed);
    }

    /// Zeroes `[from, to)` of a log mapping with non-temporal stores and
    /// one trailing fence.  Used by [`OpLog::reset`] (truncation) and by
    /// the owner when zeroing a freshly grown extension before
    /// [`OpLog::grow`] installs it.
    pub fn zero_range(device: &Arc<PmemDevice>, mapping: &DaxMapping, from: u64, to: u64) {
        let zeros = [0u8; 4096];
        let mut off = from;
        while off < to {
            let chunk = (to - off).min(zeros.len() as u64) as usize;
            if let Some((dev_off, contig)) = mapping.translate(off) {
                let n = chunk.min(contig as usize);
                device.write(
                    dev_off,
                    &zeros[..n],
                    PersistMode::NonTemporal,
                    TimeCategory::OpLog,
                );
                off += n as u64;
            } else {
                off += chunk as u64;
            }
        }
        device.fence(TimeCategory::OpLog);
    }

    /// Scans the whole log (recovery path) and returns every valid entry,
    /// sorted by sequence number.  Torn or zero slots are skipped; the cost
    /// of the scan is charged as software time.
    pub fn scan(device: &Arc<PmemDevice>, mapping: &DaxMapping, size: u64) -> Vec<LogEntry> {
        let cost = device.cost().clone();
        let mut entries = Vec::new();
        let mut buf = [0u8; ENTRY_SIZE as usize];
        let mut off = 0u64;
        while off + ENTRY_SIZE <= size {
            if let Some((dev_off, _)) = mapping.translate(off) {
                device.read_uncharged(dev_off, &mut buf);
                device.charge_software(cost.pm_read_cost(ENTRY_SIZE as usize, true));
                if let Some(entry) = LogEntry::decode(&buf) {
                    entries.push(entry);
                }
            }
            off += ENTRY_SIZE;
        }
        entries.sort_by_key(|e| e.seq);
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelfs::MapSegment;
    use pmem::PmemBuilder;

    fn log(size: u64) -> (Arc<PmemDevice>, OpLog, DaxMapping) {
        let device = PmemBuilder::new(16 * 1024 * 1024).build();
        // Map the log region directly at device offset 1 MiB for the unit
        // tests; in the real system the mapping comes from Ext4Dax::dax_map.
        let mapping = DaxMapping {
            ino: 99,
            file_offset: 0,
            len: size,
            segments: vec![MapSegment {
                file_offset: 0,
                device_offset: 1024 * 1024,
                len: size,
            }],
            huge: true,
        };
        let oplog = OpLog::new(Arc::clone(&device), mapping.clone(), size);
        (device, oplog, mapping)
    }

    fn sample_entry(seq: u64) -> LogEntry {
        LogEntry {
            op: LogOp::StagedWrite,
            target_ino: 12,
            target_offset: 8192,
            len: 4096,
            staging_ino: 77,
            staging_offset: 65536,
            seq,
        }
    }

    #[test]
    fn entry_round_trips_through_64_bytes() {
        let e = sample_entry(5);
        let bytes = e.encode();
        assert_eq!(bytes.len(), 64);
        assert_eq!(LogEntry::decode(&bytes), Some(e));
    }

    #[test]
    fn torn_entry_is_rejected_by_checksum() {
        let mut bytes = sample_entry(5).encode();
        bytes[20] ^= 0xFF;
        assert_eq!(LogEntry::decode(&bytes), None);
        assert_eq!(LogEntry::decode(&[0u8; 64]), None);
    }

    #[test]
    fn append_writes_one_line_and_one_fence() {
        let (device, oplog, _) = log(64 * 1024);
        let before = device.stats().snapshot();
        oplog.append(&sample_entry(oplog.next_seq())).unwrap();
        let delta = device.stats().snapshot().delta_since(&before);
        assert_eq!(delta.written(TimeCategory::OpLog), 64);
        assert_eq!(delta.fences, 1, "exactly one fence per logged operation");
    }

    #[test]
    fn entries_survive_crash_and_scan_in_order() {
        let (device, oplog, mapping) = log(64 * 1024);
        for _ in 0..5 {
            let seq = oplog.next_seq();
            oplog.append(&sample_entry(seq)).unwrap();
        }
        device.crash();
        let entries = OpLog::scan(&device, &mapping, 64 * 1024);
        assert_eq!(entries.len(), 5);
        assert!(entries.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn full_log_reports_no_space_and_reset_clears_it() {
        let (device, oplog, mapping) = log(256); // 4 entries
        for _ in 0..4 {
            let seq = oplog.next_seq();
            oplog.append(&sample_entry(seq)).unwrap();
        }
        assert!(oplog.is_full());
        assert_eq!(
            oplog.append(&sample_entry(oplog.next_seq())),
            Err(FsError::NoSpace)
        );
        oplog.reset();
        assert_eq!(oplog.entries_used(), 0);
        oplog.append(&sample_entry(oplog.next_seq())).unwrap();
        device.fence(TimeCategory::OpLog);
        let entries = OpLog::scan(&device, &mapping, 256);
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn group_commit_uses_one_fence_for_many_entries() {
        let (device, oplog, mapping) = log(64 * 1024);
        oplog.reset(); // establish a known-zero log, then measure
        let before = device.stats().snapshot();
        let batch: Vec<LogEntry> = (0..8).map(|_| sample_entry(oplog.next_seq())).collect();
        oplog.append_batch(&batch).unwrap();
        let delta = device.stats().snapshot().delta_since(&before);
        assert_eq!(delta.written(TimeCategory::OpLog), 8 * 64);
        assert_eq!(delta.fences, 1, "one fence covers the whole group");
        assert_eq!(delta.oplog_group_commits, 1);
        let entries = OpLog::scan(&device, &mapping, 64 * 1024);
        assert_eq!(entries.len(), 8);
    }

    #[test]
    fn group_commit_rejects_oversized_batches_without_reserving() {
        let (_device, oplog, _mapping) = log(256); // 4 entries
        let batch: Vec<LogEntry> = (0..5).map(|_| sample_entry(oplog.next_seq())).collect();
        assert_eq!(oplog.append_batch(&batch), Err(FsError::NoSpace));
        assert_eq!(oplog.entries_used(), 0, "failed batch reserves nothing");
        oplog.append(&sample_entry(oplog.next_seq())).unwrap();
    }

    #[test]
    fn reset_only_zeroes_the_used_prefix() {
        let (device, oplog, _mapping) = log(1024 * 1024);
        oplog.reset(); // first reset pays for the whole (unknown) log
        for _ in 0..4 {
            oplog.append(&sample_entry(oplog.next_seq())).unwrap();
        }
        let before = device.stats().snapshot();
        oplog.reset();
        let delta = device.stats().snapshot().delta_since(&before);
        assert_eq!(
            delta.written(TimeCategory::OpLog),
            4 * 64,
            "truncation work is proportional to entries used, not log size"
        );
        assert_eq!(oplog.entries_used(), 0);
    }

    #[test]
    fn utilization_tracks_fill_fraction() {
        let (_device, oplog, _mapping) = log(256); // 4 entries
        assert_eq!(oplog.utilization(), 0.0);
        oplog.append(&sample_entry(oplog.next_seq())).unwrap();
        oplog.append(&sample_entry(oplog.next_seq())).unwrap();
        assert!((oplog.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn concurrent_appends_reserve_distinct_slots() {
        use std::sync::Arc as StdArc;
        let (device, oplog, mapping) = log(64 * 1024);
        let oplog = StdArc::new(oplog);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let oplog = StdArc::clone(&oplog);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let mut e = sample_entry(0);
                    e.seq = oplog.next_seq();
                    e.target_offset = t * 1000 + i;
                    oplog.append(&e).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        device.fence(TimeCategory::OpLog);
        let entries = OpLog::scan(&device, &mapping, 64 * 1024);
        assert_eq!(entries.len(), 200);
        // All sequence numbers distinct.
        let mut seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 200);
    }
}
