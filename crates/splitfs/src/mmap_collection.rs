//! The collection of memory-mappings (paper §3.3, "Collection of mmaps").
//!
//! A single logical file served by U-Split may have its bytes spread over
//! several physical regions: parts of the original file mapped on demand in
//! `mmap_size` chunks, and regions relinked in from staging files whose
//! mappings are retained (no new page faults) after the relink.  The
//! collection tracks, per file, which byte ranges are mapped and at which
//! device offsets, so reads and overwrites can be served with loads and
//! stores without entering the kernel.

use std::collections::BTreeMap;

/// A byte-granularity map from file offsets to device offsets.
#[derive(Debug, Default, Clone)]
pub struct MmapCollection {
    /// file_offset → (device_offset, len); ranges never overlap.
    segments: BTreeMap<u64, (u64, u64)>,
    /// Number of `mmap` system calls this collection required (for the
    /// resource accounting experiment).
    mmap_calls: u64,
}

impl MmapCollection {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct mapped segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.segments.values().map(|&(_, len)| len).sum()
    }

    /// Number of mmap calls recorded via [`MmapCollection::record_mmap_call`].
    pub fn mmap_calls(&self) -> u64 {
        self.mmap_calls
    }

    /// Records that a real `mmap` system call was issued to populate part of
    /// this collection.
    pub fn record_mmap_call(&mut self) {
        self.mmap_calls += 1;
    }

    /// Translates a file offset to `(device_offset, contiguous_len)`.
    pub fn lookup(&self, file_offset: u64) -> Option<(u64, u64)> {
        let (&start, &(dev, len)) = self.segments.range(..=file_offset).next_back()?;
        if file_offset < start + len {
            let delta = file_offset - start;
            Some((dev + delta, len - delta))
        } else {
            None
        }
    }

    /// Returns `true` when the whole range `[offset, offset+len)` is mapped.
    pub fn covers(&self, offset: u64, len: u64) -> bool {
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            match self.lookup(cur) {
                Some((_, contig)) => cur += contig.min(end - cur),
                None => return false,
            }
        }
        true
    }

    /// Removes any mapping overlapping `[offset, offset+len)`.
    pub fn remove_range(&mut self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let end = offset + len;
        let mut to_remove = Vec::new();
        let mut to_insert = Vec::new();
        for (&start, &(dev, seg_len)) in self.segments.range(..end) {
            let seg_end = start + seg_len;
            if seg_end <= offset {
                continue;
            }
            to_remove.push(start);
            if start < offset {
                to_insert.push((start, dev, offset - start));
            }
            if seg_end > end {
                to_insert.push((end, dev + (end - start), seg_end - end));
            }
        }
        for s in to_remove {
            self.segments.remove(&s);
        }
        for (s, d, l) in to_insert {
            self.segments.insert(s, (d, l));
        }
    }

    /// Inserts a mapping of `[file_offset, file_offset+len)` to
    /// `device_offset`, replacing anything it overlaps and merging with
    /// adjacent segments that are contiguous on both sides.
    pub fn insert(&mut self, file_offset: u64, device_offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        self.remove_range(file_offset, len);
        let mut start = file_offset;
        let mut dev = device_offset;
        let mut length = len;
        // Merge with predecessor.
        if let Some((&prev_start, &(prev_dev, prev_len))) = self.segments.range(..start).next_back()
        {
            if prev_start + prev_len == start && prev_dev + prev_len == dev {
                self.segments.remove(&prev_start);
                start = prev_start;
                dev = prev_dev;
                length += prev_len;
            }
        }
        // Merge with successor.
        if let Some((&next_start, &(next_dev, next_len))) = self.segments.range(start + 1..).next()
        {
            if start + length == next_start && dev + length == next_dev {
                self.segments.remove(&next_start);
                length += next_len;
            }
        }
        self.segments.insert(start, (dev, length));
    }

    /// Drops every mapping (called on `unlink`, §3.5).
    pub fn clear(&mut self) {
        self.segments.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_and_covers() {
        let mut c = MmapCollection::new();
        c.insert(0, 1_000_000, 4096);
        c.insert(8192, 2_000_000, 4096);
        assert_eq!(c.lookup(0), Some((1_000_000, 4096)));
        assert_eq!(c.lookup(100), Some((1_000_100, 3996)));
        assert_eq!(c.lookup(4096), None);
        assert!(c.covers(0, 4096));
        assert!(!c.covers(0, 8192));
        assert!(c.covers(8192, 4096));
        assert_eq!(c.mapped_bytes(), 8192);
    }

    #[test]
    fn contiguous_inserts_merge() {
        let mut c = MmapCollection::new();
        c.insert(0, 1_000_000, 4096);
        c.insert(4096, 1_004_096, 4096);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(8191), Some((1_008_191, 1)));
        // Non-contiguous device offsets must not merge.
        c.insert(8192, 9_000_000, 4096);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn overlapping_insert_replaces_old_mapping() {
        let mut c = MmapCollection::new();
        c.insert(0, 1_000_000, 8192);
        // Relink places new physical blocks under the middle of the range.
        c.insert(4096, 5_000_000, 4096);
        assert_eq!(c.lookup(0), Some((1_000_000, 4096)));
        assert_eq!(c.lookup(4096), Some((5_000_000, 4096)));
        assert_eq!(c.mapped_bytes(), 8192);
    }

    #[test]
    fn remove_range_splits_segments() {
        let mut c = MmapCollection::new();
        c.insert(0, 1_000_000, 12288);
        c.remove_range(4096, 4096);
        assert!(c.covers(0, 4096));
        assert!(!c.covers(4096, 1));
        assert!(c.covers(8192, 4096));
        assert_eq!(c.lookup(8192), Some((1_008_192, 4096)));
    }

    #[test]
    fn clear_empties_the_collection() {
        let mut c = MmapCollection::new();
        c.insert(0, 500, 100);
        c.record_mmap_call();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.mmap_calls(), 1);
    }
}
