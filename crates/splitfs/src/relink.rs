//! The user-space half of the relink primitive (paper §3.3, Figure 2).
//!
//! On `fsync` (or `close`, an operation-log checkpoint, or a background
//! maintenance pass), every staged extent of a file is moved into the
//! target file:
//!
//! * staged extents are coalesced into runs and planned by
//!   [`crate::batch`]: block-aligned portions become [`kernelfs::RelinkOp`]s
//!   submitted through the **batched**
//!   [`kernelfs::Ext4Dax::ioctl_relink_batch`] entry point, so one kernel
//!   trap and one journal transaction cover every aligned run of the file;
//! * unaligned head/tail bytes are copied (the paper's partial-block case);
//! * the mappings that served the staged data are retained in the target
//!   file's collection of mmaps, so later reads hit the same physical
//!   blocks without new page faults;
//! * in sync/strict mode an `Invalidate` entry is appended to the operation
//!   log so recovery will not replay the now-applied staged writes.  A
//!   caller retiring many files at once (the daemon's checkpoint) can defer
//!   these markers and group-commit them under a single fence.
//!
//! With `use_relink` disabled (Figure 3 ablation) the staged data is copied
//! into the target through the kernel write path instead, which is exactly
//! the "staging without relink" configuration whose cost the paper
//! measures.

use parking_lot::RwLockWriteGuard;
use pmem::{AccessPattern, TimeCategory};
use vfs::{FileSystem, FsResult};

use crate::batch::{self, CopySpan};
use crate::fs::SplitFs;
use crate::oplog::{LogEntry, LogOp};
use crate::state::FileState;

impl SplitFs {
    /// Applies every staged extent of `state` to the target file, appending
    /// the `Invalidate` marker inline.  Called with the file's state lock
    /// held.
    pub(crate) fn relink_file(&self, state: &mut FileState) -> FsResult<()> {
        let mut deferred = Vec::new();
        self.relink_file_deferring(state, &mut deferred)?;
        // Mark the applied operations as not-to-be-replayed.  This is an
        // optimization (recovery would also skip them because the staging
        // ranges are holes after the relink), so a full log is not an error:
        // the marker is simply dropped.
        for entry in &deferred {
            match self.log_append(entry) {
                Ok(()) | Err(vfs::FsError::NoSpace) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Applies every staged extent of `state`, pushing the resulting
    /// `Invalidate` marker (if any) onto `deferred` instead of appending it.
    /// The daemon's checkpoint path uses this to group-commit the markers
    /// of many files under one fence.  Called with the file's state lock
    /// held.
    pub(crate) fn relink_file_deferring(
        &self,
        state: &mut FileState,
        deferred: &mut Vec<LogEntry>,
    ) -> FsResult<()> {
        if state.staged.is_empty() {
            return Ok(());
        }
        let runs = batch::coalesce(&state.staged);
        let max_seq = state.staged.iter().map(|e| e.seq).max().unwrap_or(0);
        let target_ino = state.ino;

        // Overlapping runs (strict-mode overwrites of the same range) are
        // split into ordered generations; within a generation all ranges
        // are disjoint, so one batched relink covers it and the ordering
        // across generations gives last-writer-wins.
        let chunk_size = self.config.daemon.relink_batch_size.max(1);
        for generation in batch::generations(&runs) {
            let plan = batch::plan(generation, state.kernel_fd, self.config.use_relink);

            // Submit every aligned move, chunked by the configured batch
            // size: one kernel trap and one journal transaction per chunk
            // instead of one per run.
            for chunk in plan.ops.chunks(chunk_size) {
                self.kernel.ioctl_relink_batch(chunk)?;
            }
            // Retain the staging mappings: the physical blocks that backed
            // the staging ranges now back the target ranges, so reads keep
            // using them without faulting (Figure 2, step 3).
            for m in &plan.retained {
                state.mmaps.insert(m.target_offset, m.device_offset, m.len);
            }
            for span in &plan.copies {
                self.copy_span_to_target(state, span)?;
            }
        }

        // Everything staged is now in the target file; feed the staging
        // pool's recyclability accounting.
        let retired = state.staged.len() as u64;
        for ext in &state.staged {
            self.staging.note_retired(ext.staging_ino, ext.len);
        }
        state.staged.clear();
        state.kernel_size = self.kernel.fstat(state.kernel_fd)?.size;
        state.cached_size = state.cached_size.max(state.kernel_size);

        if self.config.mode.logs_data_ops() && max_seq > 0 {
            deferred.push(LogEntry {
                op: LogOp::Invalidate,
                target_ino,
                target_offset: 0,
                len: 0,
                staging_ino: 0,
                staging_offset: 0,
                seq: max_seq,
                instance_id: self.instance_id,
            });
        }
        self.device.fence(TimeCategory::UserData);
        // The batch's journal transaction and data fence are complete.
        self.device.declare(pmem::Promise::RelinkCommitted {
            instance: self.instance_id,
            ops: retired,
        });
        Ok(())
    }

    /// Retires the staged extents of **many files** through a single
    /// batched relink: every file's coalesced runs are planned together
    /// and submitted as one `ioctl_relink_batch` call — one kernel trap
    /// and one journal transaction for the whole set ([`vfs::FileSystem::
    /// fsync_many`]'s contract).  The resulting `Invalidate` markers
    /// group-commit under one fence.
    ///
    /// Files whose staged runs overlap each other (strict-mode overwrites
    /// of the same range, which need ordered generations) are retired
    /// individually; everything else — the append-dominated common case —
    /// shares the combined batch.  Called with every state's write lock
    /// held.
    pub(crate) fn relink_many(
        &self,
        states: &mut [RwLockWriteGuard<'_, FileState>],
    ) -> FsResult<()> {
        let mut combined: Vec<kernelfs::RelinkOp> = Vec::new();
        let mut planned: Vec<(usize, batch::RelinkPlan)> = Vec::new();
        let mut deferred: Vec<LogEntry> = Vec::new();
        let mut retired = 0u64;
        for (i, st) in states.iter_mut().enumerate() {
            if st.staged.is_empty() {
                continue;
            }
            let runs = batch::coalesce(&st.staged);
            let gens = batch::generations(&runs);
            if gens.len() == 1 {
                let plan = batch::plan(gens[0], st.kernel_fd, self.config.use_relink);
                combined.extend(plan.ops.iter().copied());
                planned.push((i, plan));
            } else {
                // Overlapping overwrites need generation ordering; retire
                // this file on its own, deferring its marker into the
                // shared group commit.
                self.relink_file_deferring(st, &mut deferred)?;
            }
        }
        // One submission for the combined set; the configured batch size
        // still caps a single kernel call (as on the per-file path), so a
        // pathological extent count degrades to a few transactions rather
        // than one unbounded one.
        let chunk_size = self.config.daemon.relink_batch_size.max(1);
        for chunk in combined.chunks(chunk_size) {
            self.kernel.ioctl_relink_batch(chunk)?;
        }
        for (i, plan) in &planned {
            let st = &mut *states[*i];
            for m in &plan.retained {
                st.mmaps.insert(m.target_offset, m.device_offset, m.len);
            }
            for span in &plan.copies {
                self.copy_span_to_target(st, span)?;
            }
            let max_seq = st.staged.iter().map(|e| e.seq).max().unwrap_or(0);
            let target_ino = st.ino;
            retired += st.staged.len() as u64;
            for ext in &st.staged {
                self.staging.note_retired(ext.staging_ino, ext.len);
            }
            st.staged.clear();
            st.kernel_size = self.kernel.fstat(st.kernel_fd)?.size;
            st.cached_size = st.cached_size.max(st.kernel_size);
            if self.config.mode.logs_data_ops() && max_seq > 0 {
                deferred.push(LogEntry {
                    op: LogOp::Invalidate,
                    target_ino,
                    target_offset: 0,
                    len: 0,
                    staging_ino: 0,
                    staging_offset: 0,
                    seq: max_seq,
                    instance_id: self.instance_id,
                });
            }
        }
        self.device.fence(TimeCategory::UserData);
        if retired > 0 {
            self.device.declare(pmem::Promise::RelinkCommitted {
                instance: self.instance_id,
                ops: retired,
            });
        }
        // Markers are an optimization (recovery also skips relinked
        // entries because their staging ranges are holes); a full log
        // simply drops them.
        if !deferred.is_empty() {
            if let Some(oplog) = self.oplog.as_ref() {
                match oplog.append_batch(&deferred) {
                    Ok(()) | Err(vfs::FsError::NoSpace) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    /// Copies one planned span from the staging blocks into the target file
    /// via the kernel.
    fn copy_span_to_target(&self, state: &mut FileState, span: &CopySpan) -> FsResult<()> {
        let mut buf = vec![0u8; span.len as usize];
        self.device.read(
            span.device_offset,
            &mut buf,
            AccessPattern::Sequential,
            TimeCategory::UserData,
        );
        self.kernel
            .write_at(state.kernel_fd, span.target_offset, &buf)?;
        state.kernel_size = state.kernel_size.max(span.target_offset + span.len);
        Ok(())
    }
}
