//! The user-space half of the relink primitive (paper §3.3, Figure 2).
//!
//! On `fsync` (or `close`, or an operation-log checkpoint), every staged
//! extent of a file is moved into the target file:
//!
//! * block-aligned portions are moved with the kernel's
//!   [`kernelfs::Ext4Dax::ioctl_relink`] — a journaled, atomic,
//!   metadata-only operation that copies **no data**;
//! * unaligned head/tail bytes are copied (the paper's partial-block case);
//! * the mappings that served the staged data are retained in the target
//!   file's collection of mmaps, so later reads hit the same physical
//!   blocks without new page faults;
//! * in sync/strict mode an `Invalidate` entry is appended to the operation
//!   log so recovery will not replay the now-applied staged writes.
//!
//! With `use_relink` disabled (Figure 3 ablation) the staged data is copied
//! into the target through the kernel write path instead, which is exactly
//! the "staging without relink" configuration whose cost the paper
//! measures.

use kernelfs::BLOCK_SIZE;
use pmem::{AccessPattern, TimeCategory};
use vfs::{FileSystem, FsResult};

use crate::fs::SplitFs;
use crate::oplog::{LogEntry, LogOp};
use crate::state::{FileState, StagedExtent};

/// A group of staged extents that are contiguous in both the target file
/// and the staging file, so they can be applied with a single relink.
#[derive(Debug, Clone, Copy)]
struct StagedRun {
    target_offset: u64,
    staging_fd: vfs::Fd,
    staging_offset: u64,
    device_offset: u64,
    len: u64,
    max_seq: u64,
}

fn coalesce(staged: &[StagedExtent]) -> Vec<StagedRun> {
    let mut runs: Vec<StagedRun> = Vec::new();
    for ext in staged {
        if let Some(last) = runs.last_mut() {
            let contiguous_target = last.target_offset + last.len == ext.target_offset;
            let contiguous_staging = last.staging_fd == ext.staging_fd
                && last.staging_offset + last.len == ext.staging_offset;
            if contiguous_target && contiguous_staging {
                last.len += ext.len;
                last.max_seq = last.max_seq.max(ext.seq);
                continue;
            }
        }
        runs.push(StagedRun {
            target_offset: ext.target_offset,
            staging_fd: ext.staging_fd,
            staging_offset: ext.staging_offset,
            device_offset: ext.device_offset,
            len: ext.len,
            max_seq: ext.seq,
        });
    }
    runs
}

impl SplitFs {
    /// Applies every staged extent of `state` to the target file.  Called
    /// with the file's state lock held.
    pub(crate) fn relink_file(&self, state: &mut FileState) -> FsResult<()> {
        if state.staged.is_empty() {
            return Ok(());
        }
        let runs = coalesce(&state.staged);
        let max_seq = state.staged.iter().map(|e| e.seq).max().unwrap_or(0);
        let target_ino = state.ino;

        for run in &runs {
            if self.config.use_relink {
                self.apply_run_with_relink(state, run)?;
            } else {
                self.apply_run_by_copy(state, run)?;
            }
        }

        // Everything staged is now in the target file.
        state.staged.clear();
        state.kernel_size = self.kernel.fstat(state.kernel_fd)?.size;
        state.cached_size = state.cached_size.max(state.kernel_size);

        // Mark the applied operations as not-to-be-replayed.  This is an
        // optimization (recovery would also skip them because the staging
        // ranges are holes after the relink), so a full log is not an error:
        // the marker is simply dropped.
        if self.config.mode.logs_data_ops() && max_seq > 0 {
            match self.log_append(&LogEntry {
                op: LogOp::Invalidate,
                target_ino,
                target_offset: 0,
                len: 0,
                staging_ino: 0,
                staging_offset: 0,
                seq: max_seq,
            }) {
                Ok(()) | Err(vfs::FsError::NoSpace) => {}
                Err(e) => return Err(e),
            }
        }
        self.device.fence(TimeCategory::UserData);
        Ok(())
    }

    /// Applies one staged run using the relink ioctl for the block-aligned
    /// middle and byte copies for the unaligned head and tail.
    fn apply_run_with_relink(&self, state: &mut FileState, run: &StagedRun) -> FsResult<()> {
        let block = BLOCK_SIZE as u64;
        let t_start = run.target_offset;
        let t_end = run.target_offset + run.len;
        let aligned_start = t_start.div_ceil(block) * block;
        let aligned_end = (t_end / block) * block;

        // The staging allocation was phase-aligned with the target, so the
        // aligned target range corresponds to an aligned staging range.
        let phase_matches = run.staging_offset % block == t_start % block;

        if phase_matches && aligned_end > aligned_start {
            let head = aligned_start - t_start;
            let staging_aligned = run.staging_offset + head;
            let len = aligned_end - aligned_start;
            self.kernel.ioctl_relink(
                run.staging_fd,
                staging_aligned,
                state.kernel_fd,
                aligned_start,
                len,
            )?;
            // Retain the mapping: the physical blocks that backed the
            // staging range now back the target range, so reads can keep
            // using them without faulting (Figure 2, step 3).
            state
                .mmaps
                .insert(aligned_start, run.device_offset + head, len);

            // Copy the unaligned head and tail, if any.
            if head > 0 {
                self.copy_range_to_target(state, run, 0, head)?;
            }
            let tail = t_end - aligned_end;
            if tail > 0 {
                self.copy_range_to_target(state, run, aligned_end - t_start, tail)?;
            }
        } else {
            // Fully unaligned (sub-block) run: copy it.
            self.copy_range_to_target(state, run, 0, run.len)?;
        }
        Ok(())
    }

    /// Applies one staged run by copying it through the kernel write path
    /// (used for unaligned bytes and for the no-relink ablation).
    fn apply_run_by_copy(&self, state: &mut FileState, run: &StagedRun) -> FsResult<()> {
        self.copy_range_to_target(state, run, 0, run.len)
    }

    /// Copies `len` bytes starting `skip` bytes into the staged run from the
    /// staging blocks into the target file via the kernel.
    fn copy_range_to_target(
        &self,
        state: &mut FileState,
        run: &StagedRun,
        skip: u64,
        len: u64,
    ) -> FsResult<()> {
        let mut buf = vec![0u8; len as usize];
        self.device.read(
            run.device_offset + skip,
            &mut buf,
            AccessPattern::Sequential,
            TimeCategory::UserData,
        );
        self.kernel
            .write_at(state.kernel_fd, run.target_offset + skip, &buf)?;
        state.kernel_size = state
            .kernel_size
            .max(run.target_offset + skip + len);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(target: u64, staging: u64, len: u64, seq: u64) -> StagedExtent {
        StagedExtent {
            target_offset: target,
            len,
            staging_ino: 70,
            staging_fd: 10,
            staging_offset: staging,
            device_offset: 1_000_000 + staging,
            seq,
        }
    }

    #[test]
    fn contiguous_staged_extents_coalesce_into_one_run() {
        let staged = vec![
            ext(0, 0, 4096, 1),
            ext(4096, 4096, 4096, 2),
            ext(8192, 8192, 4096, 3),
        ];
        let runs = coalesce(&staged);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len, 12288);
        assert_eq!(runs[0].max_seq, 3);
    }

    #[test]
    fn gaps_in_target_or_staging_split_runs() {
        // Gap in the target range.
        let staged = vec![ext(0, 0, 4096, 1), ext(8192, 4096, 4096, 2)];
        assert_eq!(coalesce(&staged).len(), 2);
        // Gap in the staging range.
        let staged = vec![ext(0, 0, 4096, 1), ext(4096, 8192, 4096, 2)];
        assert_eq!(coalesce(&staged).len(), 2);
    }
}
