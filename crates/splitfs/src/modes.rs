//! SplitFS consistency modes (paper §3.2, Table 3).
//!
//! Each U-Split instance runs in one of three modes.  Applications running
//! concurrently on the same kernel file system may each pick their own mode
//! without interfering with one another — one of the architectural points
//! of the paper.

use vfs::ConsistencyClass;

/// The guarantee mode of a SplitFS instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Metadata consistency only (equivalent to ext4 DAX), plus atomic
    /// appends.  Overwrites are in-place and synchronous-to-cache; appends
    /// require an `fsync` to become durable.
    #[default]
    Posix,
    /// All operations are synchronous: when the call returns, its effects
    /// are durable.  Data operations are not atomic (equivalent to PMFS /
    /// NOVA-relaxed).
    Sync,
    /// All operations are synchronous *and* atomic (equivalent to
    /// NOVA-strict / Strata).  Overwrites are staged and relinked, and every
    /// data operation is recorded in the operation log.
    Strict,
}

/// The guarantee matrix of Table 3, as queryable predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Guarantees {
    /// Data operations are durable when the call returns.
    pub sync_data_ops: bool,
    /// Data operations are atomic with respect to crashes.
    pub atomic_data_ops: bool,
    /// Metadata operations are durable when the call returns.
    pub sync_metadata_ops: bool,
    /// Metadata operations are atomic with respect to crashes.
    pub atomic_metadata_ops: bool,
    /// Appends become atomic (at the following `fsync`) in every mode.
    pub atomic_appends: bool,
}

impl Mode {
    /// The guarantees this mode provides (paper Table 3).
    pub fn guarantees(self) -> Guarantees {
        match self {
            Mode::Posix => Guarantees {
                sync_data_ops: false,
                atomic_data_ops: false,
                sync_metadata_ops: false,
                atomic_metadata_ops: true,
                atomic_appends: true,
            },
            Mode::Sync => Guarantees {
                sync_data_ops: true,
                atomic_data_ops: false,
                sync_metadata_ops: true,
                atomic_metadata_ops: true,
                atomic_appends: true,
            },
            Mode::Strict => Guarantees {
                sync_data_ops: true,
                atomic_data_ops: true,
                sync_metadata_ops: true,
                atomic_metadata_ops: true,
                atomic_appends: true,
            },
        }
    }

    /// The comparable guarantee class used to pick baselines.
    pub fn consistency_class(self) -> ConsistencyClass {
        match self {
            Mode::Posix => ConsistencyClass::Posix,
            Mode::Sync => ConsistencyClass::Sync,
            Mode::Strict => ConsistencyClass::Strict,
        }
    }

    /// Whether data operations must be logged in the operation log.
    pub fn logs_data_ops(self) -> bool {
        matches!(self, Mode::Sync | Mode::Strict)
    }

    /// Whether overwrites are staged (copy-on-write via relink) rather than
    /// performed in place.
    pub fn stages_overwrites(self) -> bool {
        matches!(self, Mode::Strict)
    }

    /// Whether every data operation must be followed by a persistence fence
    /// before returning.
    pub fn fences_data_ops(self) -> bool {
        matches!(self, Mode::Sync | Mode::Strict)
    }

    /// Display label matching the paper ("SplitFS-POSIX", etc.).
    pub fn label(self) -> &'static str {
        match self {
            Mode::Posix => "SplitFS-POSIX",
            Mode::Sync => "SplitFS-sync",
            Mode::Strict => "SplitFS-strict",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarantee_matrix_matches_table3() {
        let posix = Mode::Posix.guarantees();
        assert!(!posix.sync_data_ops && !posix.atomic_data_ops);
        assert!(posix.atomic_metadata_ops && posix.atomic_appends);

        let sync = Mode::Sync.guarantees();
        assert!(sync.sync_data_ops && !sync.atomic_data_ops);
        assert!(sync.sync_metadata_ops);

        let strict = Mode::Strict.guarantees();
        assert!(strict.sync_data_ops && strict.atomic_data_ops);
        assert!(strict.sync_metadata_ops && strict.atomic_metadata_ops);
    }

    #[test]
    fn strictness_is_monotone() {
        // Every guarantee provided by a weaker mode is provided by stronger
        // ones.
        let modes = [Mode::Posix, Mode::Sync, Mode::Strict];
        for pair in modes.windows(2) {
            let (weak, strong) = (pair[0].guarantees(), pair[1].guarantees());
            assert!(strong.sync_data_ops >= weak.sync_data_ops);
            assert!(strong.atomic_data_ops >= weak.atomic_data_ops);
            assert!(strong.sync_metadata_ops >= weak.sync_metadata_ops);
            assert!(strong.atomic_metadata_ops >= weak.atomic_metadata_ops);
        }
    }

    #[test]
    fn consistency_classes_map_to_baseline_groups() {
        assert_eq!(Mode::Posix.consistency_class(), ConsistencyClass::Posix);
        assert_eq!(Mode::Sync.consistency_class(), ConsistencyClass::Sync);
        assert_eq!(Mode::Strict.consistency_class(), ConsistencyClass::Strict);
    }

    #[test]
    fn only_strict_stages_overwrites() {
        assert!(!Mode::Posix.stages_overwrites());
        assert!(!Mode::Sync.stages_overwrites());
        assert!(Mode::Strict.stages_overwrites());
    }
}
