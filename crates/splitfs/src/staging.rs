//! Staging files (paper §3.3, "Staging").
//!
//! Appends — and, in strict mode, overwrites — are first written to
//! pre-allocated, pre-mapped *staging files* and only attached to their
//! target file at the next `fsync`/`close` via relink.  The pool
//! pre-creates a configurable number of staging files at startup
//! (`SplitConfig::staging_files` × `staging_file_size`) so that taking
//! staging space in the write path is a cheap cursor bump.
//!
//! Each U-Split instance owns one pool, rooted in the staging directory
//! its kernel lease names ([`kernelfs::lease::staging_dir`]) — the
//! instance's exclusive slice of the machine-wide staging resources.  Two
//! concurrent instances therefore never hand out overlapping staging
//! space, and recovery can attribute every staging file to its owner.
//!
//! When the pool runs low, replacements come from two sources:
//!
//! * the [background maintenance daemon](crate::daemon) provisions fresh
//!   files asynchronously whenever the number of unconsumed files falls
//!   below `DaemonConfig::staging_low_watermark` (this is the paper's
//!   design: staging allocation happens "on a background thread"), and
//! * as a last resort, [`StagingPool::take`] creates a file **inline** on
//!   the foreground write path.  Inline creations are counted separately
//!   ([`StagingPool::files_created_inline`] and the device-wide
//!   `staging_inline_creates` statistic) so experiments can verify the
//!   daemon eliminates them.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use kernelfs::{DaxMapping, Ext4Dax, BLOCK_SIZE};
use pmem::PmemDevice;
use vfs::{Fd, FileSystem, FsResult, OpenFlags};

use crate::config::SplitConfig;

/// A slice of staging space handed to the write path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagingAllocation {
    /// Inode of the staging file (recorded in operation-log entries).
    pub staging_ino: u64,
    /// Kernel descriptor of the staging file (used for relink).
    pub staging_fd: Fd,
    /// Byte offset of the allocation within the staging file.
    pub staging_offset: u64,
    /// Device offset where the data should be written directly.
    pub device_offset: u64,
    /// Usable length of the allocation (may be shorter than requested;
    /// callers loop).
    pub len: u64,
}

#[derive(Debug)]
struct StagingFile {
    fd: Fd,
    ino: u64,
    mapping: DaxMapping,
    cursor: u64,
    size: u64,
    /// Bytes actually handed out by `take` (excludes alignment padding).
    consumed: u64,
    /// Bytes whose staged data was retired (relinked or copied into its
    /// target).  When an exhausted file's `retired` catches up with its
    /// `consumed`, the file is recyclable.
    retired: u64,
}

/// A staging file pulled out of the pool for recycling (see
/// [`StagingPool::begin_recycle`]).
#[derive(Debug)]
pub struct RecycledFile {
    file: StagingFile,
}

impl RecycledFile {
    /// Inode of the file being recycled.
    pub fn ino(&self) -> u64 {
        self.file.ino
    }
}

/// The pool of staging files owned by one U-Split instance.
#[derive(Debug)]
pub struct StagingPool {
    kernel: Arc<Ext4Dax>,
    device: Arc<PmemDevice>,
    dir: String,
    file_size: u64,
    populate: bool,
    inner: Mutex<PoolInner>,
    /// Mirror of `files.len() - active`, readable without the pool lock so
    /// the append fast path can check the provisioning watermark without
    /// serializing on the mutex.
    unconsumed: AtomicUsize,
}

#[derive(Debug, Default)]
struct PoolInner {
    files: Vec<StagingFile>,
    /// Index of the staging file allocations are currently served from.
    active: usize,
    /// Name counter for `stage-N` paths (monotonic across all sources).
    next_name: u64,
    created_preallocated: u64,
    created_inline: u64,
    created_background: u64,
}

impl StagingPool {
    /// Creates the pool, pre-allocating `config.staging_files` staging files
    /// under `dir` (created if missing) on the kernel file system.
    pub fn new(
        kernel: Arc<Ext4Dax>,
        device: Arc<PmemDevice>,
        dir: &str,
        config: &SplitConfig,
    ) -> FsResult<Self> {
        if !kernel.exists(dir) {
            kernel.mkdir(dir)?;
        }
        let pool = Self {
            kernel,
            device,
            dir: dir.to_string(),
            file_size: config.staging_file_size,
            populate: config.populate_mmaps,
            inner: Mutex::new(PoolInner::default()),
            unconsumed: AtomicUsize::new(0),
        };
        for _ in 0..config.staging_files.max(1) {
            let name = pool.reserve_name();
            let file = pool.build_staging_file(name)?;
            let mut inner = pool.inner.lock();
            inner.files.push(file);
            inner.created_preallocated += 1;
            pool.refresh_unconsumed(&inner);
        }
        Ok(pool)
    }

    /// Refreshes the lock-free unconsumed-files mirror; call with the pool
    /// lock held after any mutation of `files`/`active`.
    fn refresh_unconsumed(&self, inner: &PoolInner) {
        self.unconsumed.store(
            inner.files.len().saturating_sub(inner.active),
            Ordering::Relaxed,
        );
    }

    /// Reserves the next `stage-N` name.
    fn reserve_name(&self) -> u64 {
        let mut inner = self.inner.lock();
        let name = inner.next_name;
        inner.next_name += 1;
        name
    }

    /// Creates, pre-allocates and maps one staging file.  Deliberately does
    /// **not** hold the pool lock: file creation goes through the kernel
    /// file system and is the expensive part, so builders (the daemon, or
    /// an unlucky foreground thread) must not block concurrent `take`s.
    fn build_staging_file(&self, name: u64) -> FsResult<StagingFile> {
        let path = format!("{}/stage-{}", self.dir, name);
        let fd = self.kernel.open(&path, OpenFlags::create())?;
        // A stale file left by a previous incarnation of this instance may
        // have holes where relink moved blocks out; empty it first so the
        // extension below re-allocates every block.  Safe: the instance's
        // operation log is always recovered (and zeroed) before the pool
        // is built, so nothing references the old staging bytes.
        if self.kernel.fstat(fd)?.size > 0 {
            self.kernel.ftruncate(fd, 0)?;
        }
        // Pre-allocate the whole file so appends never allocate in the
        // critical path, then map it once.
        self.kernel.ftruncate(fd, self.file_size)?;
        let mapping = self.kernel.dax_map(fd, 0, self.file_size, self.populate)?;
        let ino = self.kernel.fd_ino(fd)?;
        Ok(StagingFile {
            fd,
            ino,
            mapping,
            cursor: 0,
            size: self.file_size,
            consumed: 0,
            retired: 0,
        })
    }

    /// Asynchronously provisions one staging file (called by a maintenance
    /// worker).  The new file is appended to the pool's unconsumed tail.
    pub fn provision_one(&self) -> FsResult<()> {
        let name = self.reserve_name();
        let file = self.build_staging_file(name)?;
        let mut inner = self.inner.lock();
        inner.files.push(file);
        inner.created_background += 1;
        self.refresh_unconsumed(&inner);
        drop(inner);
        self.device.stats().add_staging_bg_create();
        Ok(())
    }

    /// Number of staging files that still have unconsumed capacity (the
    /// active file plus every file after it).  Lock-free: reads a mirror
    /// maintained by the mutating paths.
    pub fn unconsumed_files(&self) -> usize {
        self.unconsumed.load(Ordering::Relaxed)
    }

    /// Whether the pool has fallen below `low_watermark` unconsumed files
    /// and background provisioning should run.
    pub fn needs_provisioning(&self, low_watermark: usize) -> bool {
        self.unconsumed_files() < low_watermark
    }

    /// Number of staging files created so far, from every source
    /// (pre-allocated at startup, background-provisioned, and emergency
    /// inline creations).
    pub fn files_created(&self) -> u64 {
        let inner = self.inner.lock();
        inner.created_preallocated + inner.created_inline + inner.created_background
    }

    /// Staging files pre-allocated at startup.
    pub fn files_created_preallocated(&self) -> u64 {
        self.inner.lock().created_preallocated
    }

    /// Staging files created inline on the foreground write path because
    /// the pool ran dry — the number the daemon exists to keep at zero.
    pub fn files_created_inline(&self) -> u64 {
        self.inner.lock().created_inline
    }

    /// Staging files provisioned asynchronously by maintenance workers.
    pub fn files_created_background(&self) -> u64 {
        self.inner.lock().created_background
    }

    /// Takes up to `len` bytes of staging space whose in-file offset is
    /// congruent to `phase` modulo the block size, so that a later relink of
    /// the target range can stay block-aligned.  Returns an allocation that
    /// may be shorter than `len`; callers loop until satisfied.
    pub fn take(&self, len: u64, phase: u64) -> FsResult<StagingAllocation> {
        let cost = self.device.cost().clone();
        self.device.charge_software(cost.usplit_staging_take_ns);
        let mut inner = self.inner.lock();
        loop {
            if inner.active >= inner.files.len() {
                // Every pre-allocated file is used up and the daemon has not
                // kept pace (or is disabled): replenish inline.  The lock is
                // dropped while the file is built so concurrent takers and
                // the daemon can still make progress.
                let name = inner.next_name;
                inner.next_name += 1;
                drop(inner);
                let file = self.build_staging_file(name)?;
                inner = self.inner.lock();
                inner.files.push(file);
                inner.created_inline += 1;
                self.refresh_unconsumed(&inner);
                self.device.stats().add_staging_inline_create();
            }
            let active = inner.active;
            let file = &mut inner.files[active];
            // Align the cursor to the requested phase within a block.
            let misalign =
                (phase + BLOCK_SIZE as u64 - file.cursor % BLOCK_SIZE as u64) % BLOCK_SIZE as u64;
            let start = file.cursor + misalign;
            if start >= file.size {
                inner.active += 1;
                self.refresh_unconsumed(&inner);
                continue;
            }
            let avail = file.size - start;
            let take = avail.min(len);
            if take == 0 {
                inner.active += 1;
                self.refresh_unconsumed(&inner);
                continue;
            }
            let (device_offset, contig) = file
                .mapping
                .translate(start)
                .ok_or_else(|| vfs::FsError::Io("staging file mapping hole".into()))?;
            let take = take.min(contig);
            file.cursor = start + take;
            file.consumed += take;
            return Ok(StagingAllocation {
                staging_ino: file.ino,
                staging_fd: file.fd,
                staging_offset: start,
                device_offset,
                len: take,
            });
        }
    }

    /// Records that `len` bytes staged in `staging_ino` were retired
    /// (relinked or copied into their target file).  Feeds the
    /// recyclability accounting: an exhausted file whose retired bytes
    /// catch up with its consumed bytes can be recycled.
    pub fn note_retired(&self, staging_ino: u64, len: u64) {
        let mut inner = self.inner.lock();
        if let Some(file) = inner.files.iter_mut().find(|f| f.ino == staging_ino) {
            file.retired = (file.retired + len).min(file.consumed);
        }
    }

    /// Takes one recyclable staging file out of the pool: a file the
    /// cursor has moved past (no future `take` touches it) whose staged
    /// bytes were all retired.  The caller appends the durable
    /// `StagingRecycle` log marker, then calls [`StagingPool::rebuild`]
    /// (or [`StagingPool::abort_recycle`] on failure).
    pub fn begin_recycle(&self) -> Option<RecycledFile> {
        let mut inner = self.inner.lock();
        let idx = inner.files[..inner.active]
            .iter()
            .position(|f| f.consumed > 0 && f.retired >= f.consumed)?;
        let file = inner.files.remove(idx);
        inner.active -= 1;
        self.refresh_unconsumed(&inner);
        Some(RecycledFile { file })
    }

    /// Re-provisions a recycled file: frees its remaining blocks,
    /// pre-allocates fresh ones, remaps it and returns it to the pool's
    /// unconsumed tail.
    pub fn rebuild(&self, rec: RecycledFile) -> FsResult<()> {
        let RecycledFile { file } = rec;
        // Free whatever blocks the relinks left behind (padding, copied
        // spans), then pre-allocate the full size again.
        self.kernel.ftruncate(file.fd, 0)?;
        self.kernel.ftruncate(file.fd, file.size)?;
        let mapping = self.kernel.dax_map(file.fd, 0, file.size, self.populate)?;
        let mut inner = self.inner.lock();
        inner.files.push(StagingFile {
            fd: file.fd,
            ino: file.ino,
            mapping,
            cursor: 0,
            size: file.size,
            consumed: 0,
            retired: 0,
        });
        self.refresh_unconsumed(&inner);
        drop(inner);
        self.device.stats().add_staging_recycle();
        Ok(())
    }

    /// Puts a file taken by [`StagingPool::begin_recycle`] back untouched
    /// (the recycle marker could not be made durable).
    pub fn abort_recycle(&self, rec: RecycledFile) {
        let mut inner = self.inner.lock();
        // Re-insert before the active index: the file is exhausted.
        inner.files.insert(0, rec.file);
        inner.active += 1;
        self.refresh_unconsumed(&inner);
    }

    /// Translates a (staging_ino, staging_offset) pair back to a device
    /// offset; used by the read path for staged-but-not-yet-relinked data
    /// and by crash recovery.
    pub fn translate(&self, staging_ino: u64, staging_offset: u64) -> Option<(u64, u64)> {
        let inner = self.inner.lock();
        inner
            .files
            .iter()
            .find(|f| f.ino == staging_ino)
            .and_then(|f| f.mapping.translate(staging_offset))
    }

    /// Returns the kernel descriptor for a staging file by inode.
    pub fn fd_for(&self, staging_ino: u64) -> Option<Fd> {
        let inner = self.inner.lock();
        inner
            .files
            .iter()
            .find(|f| f.ino == staging_ino)
            .map(|f| f.fd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::Mode;
    use pmem::PmemBuilder;

    fn setup() -> (Arc<PmemDevice>, Arc<Ext4Dax>, StagingPool) {
        let device = PmemBuilder::new(256 * 1024 * 1024)
            .track_persistence(false)
            .build();
        let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
        let config = SplitConfig::new(Mode::Posix).with_staging(2, 4 * 1024 * 1024);
        let pool = StagingPool::new(
            Arc::clone(&kernel),
            Arc::clone(&device),
            "/.splitfs",
            &config,
        )
        .unwrap();
        (device, kernel, pool)
    }

    #[test]
    fn pool_preallocates_staging_files() {
        let (_d, kernel, pool) = setup();
        assert_eq!(pool.files_created(), 2);
        assert_eq!(pool.files_created_preallocated(), 2);
        assert_eq!(pool.files_created_inline(), 0);
        assert_eq!(pool.unconsumed_files(), 2);
        let entries = kernel.readdir("/.splitfs").unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries.contains(&"stage-0".to_string()));
    }

    #[test]
    fn allocations_do_not_overlap() {
        let (_d, _k, pool) = setup();
        let a = pool.take(4096, 0).unwrap();
        let b = pool.take(4096, 0).unwrap();
        assert_ne!(a.device_offset, b.device_offset);
        assert!(a.staging_offset + a.len <= b.staging_offset || a.staging_ino != b.staging_ino);
    }

    #[test]
    fn phase_alignment_is_respected() {
        let (_d, _k, pool) = setup();
        let a = pool.take(1000, 100).unwrap();
        assert_eq!(a.staging_offset % BLOCK_SIZE as u64, 100);
        let b = pool.take(4096, 0).unwrap();
        assert_eq!(b.staging_offset % BLOCK_SIZE as u64, 0);
    }

    #[test]
    fn exhausting_preallocated_files_replenishes_inline() {
        let (device, _k, pool) = setup();
        // 2 files x 4 MiB; take 3 MiB chunks until we exceed the initial
        // capacity and force an inline replenish.
        let mut taken = 0u64;
        while taken < 10 * 1024 * 1024 {
            let a = pool.take(3 * 1024 * 1024, 0).unwrap();
            assert!(a.len > 0);
            taken += a.len;
        }
        assert!(pool.files_created() > 2);
        assert!(
            pool.files_created_inline() > 0,
            "emergency creations are attributed to the inline counter"
        );
        assert_eq!(pool.files_created_background(), 0);
        assert_eq!(
            device.stats().snapshot().staging_inline_creates,
            pool.files_created_inline(),
            "device-wide statistic mirrors the pool counter"
        );
    }

    #[test]
    fn background_provisioning_prevents_inline_creation() {
        let (device, _k, pool) = setup();
        // Drain most of the pre-allocated capacity, then provision like the
        // daemon would before the pool runs dry.
        let mut taken = 0u64;
        while taken < 7 * 1024 * 1024 {
            taken += pool.take(1024 * 1024, 0).unwrap().len;
        }
        assert!(pool.needs_provisioning(2));
        pool.provision_one().unwrap();
        pool.provision_one().unwrap();
        assert!(!pool.needs_provisioning(2));
        while taken < 14 * 1024 * 1024 {
            taken += pool.take(1024 * 1024, 0).unwrap().len;
        }
        assert_eq!(pool.files_created_inline(), 0);
        assert_eq!(pool.files_created_background(), 2);
        assert_eq!(device.stats().snapshot().staging_bg_creates, 2);
        assert_eq!(device.stats().snapshot().staging_inline_creates, 0);
    }

    #[test]
    fn translate_finds_staged_locations() {
        let (_d, _k, pool) = setup();
        let a = pool.take(8192, 0).unwrap();
        let (dev, contig) = pool.translate(a.staging_ino, a.staging_offset).unwrap();
        assert_eq!(dev, a.device_offset);
        assert!(contig >= a.len);
        assert!(pool.translate(9999, 0).is_none());
    }
}
