//! Staging files (paper §3.3, "Staging").
//!
//! Appends — and, in strict mode, overwrites — are first written to
//! pre-allocated, pre-mapped *staging files* and only attached to their
//! target file at the next `fsync`/`close` via relink.  The pool
//! pre-creates a configurable number of staging files at startup
//! (`SplitConfig::staging_files` × `staging_file_size`) so that taking
//! staging space in the write path is a cheap cursor bump; when a staging
//! file is used up a replacement is created, which in the paper happens on
//! a background thread and here happens inline (its cost amortizes over the
//! thousands of appends that fit in one staging file).

use std::sync::Arc;

use parking_lot::Mutex;

use kernelfs::{DaxMapping, Ext4Dax, BLOCK_SIZE};
use pmem::PmemDevice;
use vfs::{Fd, FileSystem, FsResult, OpenFlags};

use crate::config::SplitConfig;

/// A slice of staging space handed to the write path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagingAllocation {
    /// Inode of the staging file (recorded in operation-log entries).
    pub staging_ino: u64,
    /// Kernel descriptor of the staging file (used for relink).
    pub staging_fd: Fd,
    /// Byte offset of the allocation within the staging file.
    pub staging_offset: u64,
    /// Device offset where the data should be written directly.
    pub device_offset: u64,
    /// Usable length of the allocation (may be shorter than requested;
    /// callers loop).
    pub len: u64,
}

#[derive(Debug)]
struct StagingFile {
    fd: Fd,
    ino: u64,
    mapping: DaxMapping,
    cursor: u64,
    size: u64,
}

/// The pool of staging files owned by one U-Split instance.
#[derive(Debug)]
pub struct StagingPool {
    kernel: Arc<Ext4Dax>,
    device: Arc<PmemDevice>,
    dir: String,
    file_size: u64,
    populate: bool,
    inner: Mutex<PoolInner>,
}

#[derive(Debug)]
struct PoolInner {
    files: Vec<StagingFile>,
    /// Index of the staging file allocations are currently served from.
    active: usize,
    created: u64,
}

impl StagingPool {
    /// Creates the pool, pre-allocating `config.staging_files` staging files
    /// under `dir` (created if missing) on the kernel file system.
    pub fn new(
        kernel: Arc<Ext4Dax>,
        device: Arc<PmemDevice>,
        dir: &str,
        config: &SplitConfig,
    ) -> FsResult<Self> {
        if !kernel.exists(dir) {
            kernel.mkdir(dir)?;
        }
        let pool = Self {
            kernel,
            device,
            dir: dir.to_string(),
            file_size: config.staging_file_size,
            populate: config.populate_mmaps,
            inner: Mutex::new(PoolInner {
                files: Vec::new(),
                active: 0,
                created: 0,
            }),
        };
        {
            let mut inner = pool.inner.lock();
            for _ in 0..config.staging_files.max(1) {
                let file = pool.create_staging_file(&mut inner)?;
                inner.files.push(file);
            }
        }
        Ok(pool)
    }

    fn create_staging_file(&self, inner: &mut PoolInner) -> FsResult<StagingFile> {
        let path = format!("{}/stage-{}", self.dir, inner.created);
        inner.created += 1;
        let fd = self.kernel.open(&path, OpenFlags::create())?;
        // Pre-allocate the whole file so appends never allocate in the
        // critical path, then map it once.
        self.kernel.ftruncate(fd, self.file_size)?;
        let mapping = self.kernel.dax_map(fd, 0, self.file_size, self.populate)?;
        let ino = self.kernel.fd_ino(fd)?;
        Ok(StagingFile {
            fd,
            ino,
            mapping,
            cursor: 0,
            size: self.file_size,
        })
    }

    /// Number of staging files created so far (pre-allocated plus
    /// replenished).
    pub fn files_created(&self) -> u64 {
        self.inner.lock().created
    }

    /// Takes up to `len` bytes of staging space whose in-file offset is
    /// congruent to `phase` modulo the block size, so that a later relink of
    /// the target range can stay block-aligned.  Returns an allocation that
    /// may be shorter than `len`; callers loop until satisfied.
    pub fn take(&self, len: u64, phase: u64) -> FsResult<StagingAllocation> {
        let cost = self.device.cost().clone();
        self.device.charge_software(cost.usplit_staging_take_ns);
        let mut inner = self.inner.lock();
        loop {
            let active = inner.active;
            if active >= inner.files.len() {
                // Every pre-allocated file is used up: replenish.  The paper
                // performs this on a background thread; the cost here is
                // amortized over an entire staging file worth of appends.
                let file = self.create_staging_file(&mut inner)?;
                inner.files.push(file);
            }
            let active = inner.active;
            let file = &mut inner.files[active];
            // Align the cursor to the requested phase within a block.
            let misalign =
                (phase + BLOCK_SIZE as u64 - file.cursor % BLOCK_SIZE as u64) % BLOCK_SIZE as u64;
            let start = file.cursor + misalign;
            if start >= file.size {
                inner.active += 1;
                continue;
            }
            let avail = file.size - start;
            let take = avail.min(len);
            if take == 0 {
                inner.active += 1;
                continue;
            }
            let (device_offset, contig) = file
                .mapping
                .translate(start)
                .ok_or_else(|| vfs::FsError::Io("staging file mapping hole".into()))?;
            let take = take.min(contig);
            file.cursor = start + take;
            return Ok(StagingAllocation {
                staging_ino: file.ino,
                staging_fd: file.fd,
                staging_offset: start,
                device_offset,
                len: take,
            });
        }
    }

    /// Translates a (staging_ino, staging_offset) pair back to a device
    /// offset; used by the read path for staged-but-not-yet-relinked data
    /// and by crash recovery.
    pub fn translate(&self, staging_ino: u64, staging_offset: u64) -> Option<(u64, u64)> {
        let inner = self.inner.lock();
        inner
            .files
            .iter()
            .find(|f| f.ino == staging_ino)
            .and_then(|f| f.mapping.translate(staging_offset))
    }

    /// Returns the kernel descriptor for a staging file by inode.
    pub fn fd_for(&self, staging_ino: u64) -> Option<Fd> {
        let inner = self.inner.lock();
        inner.files.iter().find(|f| f.ino == staging_ino).map(|f| f.fd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::Mode;
    use pmem::PmemBuilder;

    fn setup() -> (Arc<PmemDevice>, Arc<Ext4Dax>, StagingPool) {
        let device = PmemBuilder::new(256 * 1024 * 1024)
            .track_persistence(false)
            .build();
        let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
        let config = SplitConfig::new(Mode::Posix).with_staging(2, 4 * 1024 * 1024);
        let pool =
            StagingPool::new(Arc::clone(&kernel), Arc::clone(&device), "/.splitfs", &config)
                .unwrap();
        (device, kernel, pool)
    }

    #[test]
    fn pool_preallocates_staging_files() {
        let (_d, kernel, pool) = setup();
        assert_eq!(pool.files_created(), 2);
        let entries = kernel.readdir("/.splitfs").unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries.contains(&"stage-0".to_string()));
    }

    #[test]
    fn allocations_do_not_overlap() {
        let (_d, _k, pool) = setup();
        let a = pool.take(4096, 0).unwrap();
        let b = pool.take(4096, 0).unwrap();
        assert_ne!(a.device_offset, b.device_offset);
        assert!(a.staging_offset + a.len <= b.staging_offset || a.staging_ino != b.staging_ino);
    }

    #[test]
    fn phase_alignment_is_respected() {
        let (_d, _k, pool) = setup();
        let a = pool.take(1000, 100).unwrap();
        assert_eq!(a.staging_offset % BLOCK_SIZE as u64, 100);
        let b = pool.take(4096, 0).unwrap();
        assert_eq!(b.staging_offset % BLOCK_SIZE as u64, 0);
    }

    #[test]
    fn exhausting_preallocated_files_replenishes() {
        let (_d, _k, pool) = setup();
        // 2 files x 4 MiB; take 3 MiB chunks until we exceed the initial
        // capacity and force a replenish.
        let mut taken = 0u64;
        while taken < 10 * 1024 * 1024 {
            let a = pool.take(3 * 1024 * 1024, 0).unwrap();
            assert!(a.len > 0);
            taken += a.len;
        }
        assert!(pool.files_created() > 2);
    }

    #[test]
    fn translate_finds_staged_locations() {
        let (_d, _k, pool) = setup();
        let a = pool.take(8192, 0).unwrap();
        let (dev, contig) = pool.translate(a.staging_ino, a.staging_offset).unwrap();
        assert_eq!(dev, a.device_offset);
        assert!(contig >= a.len);
        assert!(pool.translate(9999, 0).is_none());
    }
}
