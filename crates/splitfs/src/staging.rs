//! Staging files (paper §3.3, "Staging"), lane-sharded.
//!
//! Appends — and, in strict mode, overwrites — are first written to
//! pre-allocated, pre-mapped *staging files* and only attached to their
//! target file at the next `fsync`/`close` via relink.  The pool
//! pre-creates a configurable number of staging files at startup
//! (`SplitConfig::staging_files` × `staging_file_size`) so that taking
//! staging space in the write path is a cheap cursor bump.
//!
//! The pool is partitioned into **lanes** (default one per maintenance
//! worker, overridable with [`SplitConfig::with_staging_lanes`]), each
//! owning its own active staging file, cursor and free list behind its
//! own lock.  [`StagingPool::take`] routes by the calling thread — every
//! thread is assigned a home lane on first use — so disjoint writers
//! bump disjoint cursors and never contend on one pool mutex (the
//! `staging_lock_waits` statistic counts the contended acquisitions that
//! do happen).  A lane that runs dry first **steals** a fresh file from
//! the globally longest free list (`staging_lane_steals`), and only when
//! every lane is dry does it fall back to inline creation.
//!
//! Each U-Split instance owns one pool, rooted in the staging directory
//! its kernel lease names ([`kernelfs::lease::staging_dir`]) — the
//! instance's exclusive slice of the machine-wide staging resources.  Two
//! concurrent instances therefore never hand out overlapping staging
//! space, and recovery can attribute every staging file to its owner.
//! On mount the pool **adopts** the staging files a previous incarnation
//! left in the directory (rebuilding them lane by lane; cursors restart
//! at zero because the instance's operation log is always recovered and
//! zeroed before the pool is built) and truncates any leftovers beyond
//! the configured pool size so their blocks return to the allocator.
//!
//! When a lane runs low, replacements come from two sources:
//!
//! * the [background maintenance daemon](crate::daemon) provisions fresh
//!   files asynchronously whenever a lane falls below its low watermark
//!   (this is the paper's design: staging allocation happens "on a
//!   background thread").  Watermarks are **per lane** and, when adaptive
//!   provisioning is enabled, resized from each lane's measured
//!   consumption rate (see [`crate::adaptive`]); and
//! * as a last resort, [`StagingPool::take`] creates a file **inline** on
//!   the foreground write path.  Inline creations are counted separately
//!   ([`StagingPool::files_created_inline`] and the device-wide
//!   `staging_inline_creates` statistic) so experiments can verify the
//!   daemon eliminates them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard, RwLock};

use kernelfs::{DaxMapping, Ext4Dax, BLOCK_SIZE};
use pmem::{PmemDevice, SimClock};
use vfs::{Fd, FileSystem, FsResult, OpenFlags};

use crate::config::SplitConfig;

/// Distinguishes pools for the per-thread lane cache below (two pools —
/// two instances, or a remount — must not share routing state).
static POOL_IDS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread cache of `pool id → lane seed`.  A thread's seed in a
    /// pool is assigned by that pool's own counter on the thread's first
    /// `take`, so the N writer threads of one workload get the N
    /// consecutive seeds 0..N — and therefore N **distinct** home lanes
    /// whenever the pool has at least N lanes — regardless of what other
    /// pools or unrelated threads in the process are doing.  The map
    /// grows by one entry per (thread, pool) pair and entries for dead
    /// pools are not purged (a pool cannot reach other threads' locals);
    /// the growth is bounded by pools-ever-created × live threads and a
    /// few machine words per entry.
    static POOL_LANE_SEEDS: std::cell::RefCell<HashMap<u64, usize>> =
        std::cell::RefCell::new(HashMap::new());

    /// Single-entry fast path over [`POOL_LANE_SEEDS`]: the last
    /// `(pool id, seed)` this thread resolved.  A thread almost always
    /// takes from one pool, so the common case is an integer compare
    /// instead of a hash probe.  `u64::MAX` is never a real pool id.
    static LAST_POOL_SEED: std::cell::Cell<(u64, usize)> =
        const { std::cell::Cell::new((u64::MAX, 0)) };
}

/// A slice of staging space handed to the write path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagingAllocation {
    /// Inode of the staging file (recorded in operation-log entries).
    pub staging_ino: u64,
    /// Kernel descriptor of the staging file (used for relink).
    pub staging_fd: Fd,
    /// Byte offset of the allocation within the staging file.
    pub staging_offset: u64,
    /// Device offset where the data should be written directly.
    pub device_offset: u64,
    /// Usable length of the allocation (may be shorter than requested;
    /// callers loop).
    pub len: u64,
}

#[derive(Debug)]
struct StagingFile {
    fd: Fd,
    ino: u64,
    mapping: DaxMapping,
    cursor: u64,
    size: u64,
    /// Bytes actually handed out by `take` (excludes alignment padding).
    consumed: u64,
    /// Bytes whose staged data was retired (relinked or copied into its
    /// target).  When an exhausted file's `retired` catches up with its
    /// `consumed`, the file is recyclable.
    retired: u64,
}

/// A staging file pulled out of the pool for recycling (see
/// [`StagingPool::begin_recycle`]).  Remembers its lane so that
/// [`StagingPool::rebuild`] returns it to the free list it came from.
#[derive(Debug)]
pub struct RecycledFile {
    file: StagingFile,
    lane: usize,
}

impl RecycledFile {
    /// Inode of the file being recycled.
    pub fn ino(&self) -> u64 {
        self.file.ino
    }

    /// The lane the file was (and will again be) provisioned for.
    pub fn lane(&self) -> usize {
        self.lane
    }
}

/// One lane of the pool: its own files, cursor and free list behind its
/// own lock, plus lock-free mirrors the hot paths and the daemon read.
#[derive(Debug)]
struct Lane {
    inner: Mutex<LaneInner>,
    /// Mirror of `files.len() - active`, readable without the lane lock.
    unconsumed: AtomicUsize,
    /// Cumulative bytes handed out by `take` from this lane — the
    /// adaptive controller samples this to compute per-lane demand.
    consumed_bytes: AtomicU64,
    /// Provisioning watermarks for this lane (adaptively resized).
    low_wm: AtomicUsize,
    high_wm: AtomicUsize,
    /// Whether this lane was below its low watermark at the last
    /// [`StagingPool::refresh_pressure`]; transitions maintain the
    /// pool-level `lanes_below_low` counter.
    below_low: std::sync::atomic::AtomicBool,
}

#[derive(Debug, Default)]
struct LaneInner {
    files: Vec<StagingFile>,
    /// Index of the staging file allocations are currently served from.
    active: usize,
}

impl Lane {
    fn new(low: usize, high: usize) -> Self {
        Self {
            inner: Mutex::new(LaneInner::default()),
            unconsumed: AtomicUsize::new(0),
            consumed_bytes: AtomicU64::new(0),
            low_wm: AtomicUsize::new(low),
            high_wm: AtomicUsize::new(high),
            // A fresh lane has no files, hence starts below its (≥1) low
            // watermark; the pool-level counter is initialized to match.
            below_low: std::sync::atomic::AtomicBool::new(true),
        }
    }

    /// Refreshes the lock-free unconsumed-files mirror; call with the lane
    /// lock held after any mutation of `files`/`active`, followed by
    /// [`StagingPool::refresh_pressure`].
    fn refresh_unconsumed(&self, inner: &LaneInner) {
        self.unconsumed.store(
            inner.files.len().saturating_sub(inner.active),
            Ordering::Relaxed,
        );
    }
}

/// Splits a pool-level file count across `lanes` lanes (at least one per
/// lane, so every lane can make progress).
pub(crate) fn per_lane(count: usize, lanes: usize) -> usize {
    count.div_ceil(lanes.max(1)).max(1)
}

/// The per-lane watermark floor for `config`: the configured static
/// low/high split — with `staging_files` bounding the high side, so the
/// preallocated pool shape is always provisioned back — divided across
/// the lanes.  The **single** formula behind both the pool's
/// construction-time watermarks and the adaptive controller's shrink
/// floor: if the two diverged, `release_surplus` (which trims to the
/// lane's current high watermark on every tick) could shrink a static
/// configuration below its configured pool size, and the controller
/// would report spurious "resizes" on an idle system.
pub(crate) fn lane_watermark_floor(config: &SplitConfig, lanes: usize) -> (usize, usize) {
    let low = per_lane(config.daemon.staging_low_watermark, lanes);
    let high = per_lane(
        config
            .daemon
            .staging_high_watermark
            .max(config.staging_files),
        lanes,
    )
    .max(low + 1);
    (low, high)
}

/// The lane-sharded pool of staging files owned by one U-Split instance.
#[derive(Debug)]
pub struct StagingPool {
    kernel: Arc<Ext4Dax>,
    device: Arc<PmemDevice>,
    dir: String,
    file_size: u64,
    populate: bool,
    lanes: Vec<Lane>,
    /// This pool's key in the per-thread lane-seed cache.
    pool_id: u64,
    /// Hands out lane seeds to threads on their first `take`.
    thread_seq: AtomicUsize,
    /// Name counter for `stage-N` paths — lock-free, so reserving a name
    /// (the daemon's background-build path and inline creation) never
    /// touches a lane lock.
    next_name: AtomicU64,
    /// Staging-file inode → lane index, so `note_retired`/`translate`
    /// touch exactly one lane's lock.  Entries for files in recycle limbo
    /// or mid-steal may be transiently stale; readers fall back to a
    /// full-lane scan on a miss.
    index: RwLock<HashMap<u64, usize>>,
    /// Number of lanes currently below their low watermark — the O(1)
    /// read behind [`StagingPool::needs_provisioning`], maintained by
    /// [`StagingPool::refresh_pressure`] so the append hot path never
    /// scans the lane array.
    lanes_below_low: AtomicUsize,
    created_preallocated: AtomicU64,
    created_inline: AtomicU64,
    created_background: AtomicU64,
}

impl StagingPool {
    /// Creates the pool, pre-allocating `config.staging_files` staging files
    /// (at least one **per lane**, so no lane starts dry and steals on its
    /// first take) under `dir` (created if missing) on the kernel file
    /// system, distributed round-robin across
    /// `config.effective_staging_lanes()` lanes.  Staging files left behind
    /// by a previous incarnation of this instance are adopted (rebuilt) in
    /// name order; leftovers beyond the configured pool size are truncated
    /// so their blocks are reclaimed.
    pub fn new(
        kernel: Arc<Ext4Dax>,
        device: Arc<PmemDevice>,
        dir: &str,
        config: &SplitConfig,
    ) -> FsResult<Self> {
        if !kernel.exists(dir) {
            kernel.mkdir(dir)?;
        }
        let lane_count = config.effective_staging_lanes();
        let (low, high) = lane_watermark_floor(config, lane_count);
        let pool = Self {
            kernel,
            device,
            dir: dir.to_string(),
            file_size: config.staging_file_size,
            populate: config.populate_mmaps,
            lanes: (0..lane_count).map(|_| Lane::new(low, high)).collect(),
            pool_id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            thread_seq: AtomicUsize::new(0),
            next_name: AtomicU64::new(0),
            index: RwLock::new(HashMap::new()),
            // Every fresh lane starts empty, i.e. below its low watermark.
            lanes_below_low: AtomicUsize::new(lane_count),
            created_preallocated: AtomicU64::new(0),
            created_inline: AtomicU64::new(0),
            created_background: AtomicU64::new(0),
        };

        // Names a previous incarnation left behind, in numeric order: the
        // initial pool adopts them first so their (truncated) blocks are
        // reused instead of leaking alongside fresh allocations.
        let mut existing: Vec<u64> = pool
            .kernel
            .readdir(dir)
            .unwrap_or_default()
            .iter()
            .filter_map(|name| name.strip_prefix("stage-").and_then(|n| n.parse().ok()))
            .collect();
        existing.sort_unstable();

        let initial = config.staging_files.max(lane_count);
        for i in 0..initial {
            let name = match existing.get(i) {
                Some(&name) => name,
                None => pool.reserve_name(),
            };
            pool.next_name.fetch_max(name + 1, Ordering::Relaxed);
            let file = pool.build_staging_file(name)?;
            let lane_idx = i % lane_count;
            pool.index.write().insert(file.ino, lane_idx);
            let lane = &pool.lanes[lane_idx];
            let mut inner = lane.inner.lock();
            inner.files.push(file);
            lane.refresh_unconsumed(&inner);
            drop(inner);
            pool.refresh_pressure(lane_idx);
            pool.created_preallocated.fetch_add(1, Ordering::Relaxed);
        }
        // Stale files beyond the initial pool size: give their blocks back
        // to the allocator.  They will be re-extended if the pool ever
        // grows back over their names.
        for &name in existing.iter().skip(initial) {
            pool.next_name.fetch_max(name + 1, Ordering::Relaxed);
            let path = format!("{dir}/stage-{name}");
            if let Ok(fd) = pool.kernel.open(&path, OpenFlags::read_write()) {
                let _ = pool.kernel.ftruncate(fd, 0);
                let _ = pool.kernel.close(fd);
            }
        }
        Ok(pool)
    }

    /// Reserves the next `stage-N` name.  Lock-free: a bare atomic
    /// increment, so the daemon's background-build path and inline
    /// creation never serialize on pool state just to pick a name.
    fn reserve_name(&self) -> u64 {
        self.next_name.fetch_add(1, Ordering::Relaxed)
    }

    /// The calling thread's home lane: its per-pool seed (assigned from
    /// this pool's counter on first use) modulo the lane count.  The
    /// common single-pool case is served by a one-entry thread-local
    /// cache (an integer compare); pool switches fall back to the map.
    fn home_lane(&self) -> usize {
        let (cached_pool, cached_seed) = LAST_POOL_SEED.with(|c| c.get());
        let seed = if cached_pool == self.pool_id {
            cached_seed
        } else {
            let seed = POOL_LANE_SEEDS.with(|seeds| {
                *seeds
                    .borrow_mut()
                    .entry(self.pool_id)
                    .or_insert_with(|| self.thread_seq.fetch_add(1, Ordering::Relaxed))
            });
            LAST_POOL_SEED.with(|c| c.set((self.pool_id, seed)));
            seed
        };
        seed % self.lanes.len()
    }

    /// Re-evaluates whether `lane_idx` sits below its low watermark and
    /// maintains the pool-level `lanes_below_low` counter on transitions.
    /// Call after any change to the lane's unconsumed mirror or
    /// watermarks.  Racing refreshers can transiently skew the counter by
    /// a transition, which at worst delays or duplicates one daemon nudge
    /// — the next append or tick re-converges it.
    fn refresh_pressure(&self, lane_idx: usize) {
        let lane = &self.lanes[lane_idx];
        let below = lane.unconsumed.load(Ordering::Relaxed) < lane.low_wm.load(Ordering::Relaxed);
        if lane.below_low.swap(below, Ordering::Relaxed) != below {
            if below {
                self.lanes_below_low.fetch_add(1, Ordering::Relaxed);
            } else {
                self.lanes_below_low.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of lanes the pool is partitioned into.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The lane `take` would route the calling thread to (exposed for
    /// tests asserting the routing rule).
    pub fn lane_for_current_thread(&self) -> usize {
        self.home_lane()
    }

    /// The lane currently holding the staging file with inode `ino`, if
    /// any (exposed for recycle-correctness tests).
    pub fn lane_of(&self, ino: u64) -> Option<usize> {
        self.with_file_lane(ino, |_| ()).map(|(lane, ())| lane)
    }

    /// Acquires a lane's lock with contention accounting: `try_lock`
    /// first; on failure the contended acquisition is counted in the
    /// device-wide `staging_lock_waits` statistic and the blocked time is
    /// charged to the waiting thread's simulated critical path.
    fn lock_lane(&self, lane_idx: usize) -> MutexGuard<'_, LaneInner> {
        let lane = &self.lanes[lane_idx];
        match lane.inner.try_lock() {
            Some(guard) => guard,
            None => {
                self.device.stats().add_staging_lock_wait();
                let t0 = self.device.clock().now_ns_f64();
                let guard = lane.inner.lock();
                SimClock::charge_thread_wait(self.device.clock().now_ns_f64() - t0);
                guard
            }
        }
    }

    /// Creates, pre-allocates and maps one staging file.  Deliberately does
    /// **not** hold any lane lock: file creation goes through the kernel
    /// file system and is the expensive part, so builders (the daemon, or
    /// an unlucky foreground thread) must not block concurrent `take`s.
    fn build_staging_file(&self, name: u64) -> FsResult<StagingFile> {
        let path = format!("{}/stage-{}", self.dir, name);
        let fd = self.kernel.open(&path, OpenFlags::create())?;
        // A stale file left by a previous incarnation of this instance may
        // have holes where relink moved blocks out; empty it first so the
        // extension below re-allocates every block.  Safe: the instance's
        // operation log is always recovered (and zeroed) before the pool
        // is built, so nothing references the old staging bytes.
        if self.kernel.fstat(fd)?.size > 0 {
            self.kernel.ftruncate(fd, 0)?;
        }
        // Pre-allocate the whole file so appends never allocate in the
        // critical path, then map it once.
        self.kernel.ftruncate(fd, self.file_size)?;
        let mapping = self.kernel.dax_map(fd, 0, self.file_size, self.populate)?;
        let ino = self.kernel.fd_ino(fd)?;
        Ok(StagingFile {
            fd,
            ino,
            mapping,
            cursor: 0,
            size: self.file_size,
            consumed: 0,
            retired: 0,
        })
    }

    /// Asynchronously provisions one staging file into `lane_idx` (called
    /// by a maintenance worker).  The new file is appended to the lane's
    /// unconsumed tail.
    pub fn provision_lane(&self, lane_idx: usize) -> FsResult<()> {
        let name = self.reserve_name();
        let file = self.build_staging_file(name)?;
        self.index.write().insert(file.ino, lane_idx);
        let lane = &self.lanes[lane_idx];
        let mut inner = lane.inner.lock();
        inner.files.push(file);
        lane.refresh_unconsumed(&inner);
        drop(inner);
        self.refresh_pressure(lane_idx);
        self.created_background.fetch_add(1, Ordering::Relaxed);
        self.device.stats().add_staging_bg_create();
        Ok(())
    }

    /// Asynchronously provisions one staging file into the neediest lane
    /// (largest deficit below its low watermark, or the emptiest lane when
    /// none is below).
    pub fn provision_one(&self) -> FsResult<()> {
        let lane_idx = (0..self.lanes.len())
            .max_by_key(|&i| {
                let lane = &self.lanes[i];
                let unconsumed = lane.unconsumed.load(Ordering::Relaxed);
                let low = lane.low_wm.load(Ordering::Relaxed);
                // Deficit first, then fewest files; bias toward lower
                // indices on ties via the reversed index key.
                (
                    low.saturating_sub(unconsumed),
                    usize::MAX - unconsumed,
                    usize::MAX - i,
                )
            })
            .unwrap_or(0);
        self.provision_lane(lane_idx)
    }

    /// Number of staging files with unconsumed capacity in `lane_idx`
    /// (the lane's active file plus every file after it).  Lock-free.
    pub fn lane_unconsumed(&self, lane_idx: usize) -> usize {
        self.lanes[lane_idx].unconsumed.load(Ordering::Relaxed)
    }

    /// The `(low, high)` provisioning watermarks of `lane_idx`.
    pub fn lane_watermarks(&self, lane_idx: usize) -> (usize, usize) {
        let lane = &self.lanes[lane_idx];
        (
            lane.low_wm.load(Ordering::Relaxed),
            lane.high_wm.load(Ordering::Relaxed),
        )
    }

    /// Sets `lane_idx`'s provisioning watermarks (the adaptive
    /// controller's knob).  Returns `true` — and counts an adaptive
    /// resize in the device statistics — when they actually changed.
    pub fn set_lane_watermarks(&self, lane_idx: usize, low: usize, high: usize) -> bool {
        let lane = &self.lanes[lane_idx];
        let low = low.max(1);
        let high = high.max(low + 1);
        let old_low = lane.low_wm.swap(low, Ordering::Relaxed);
        let old_high = lane.high_wm.swap(high, Ordering::Relaxed);
        let changed = old_low != low || old_high != high;
        if changed {
            // A watermark move can change which side of `low` the lane's
            // free list sits on.
            self.refresh_pressure(lane_idx);
            self.device.stats().add_staging_adaptive_resize();
        }
        changed
    }

    /// Cumulative bytes `take` has handed out from `lane_idx` — the
    /// adaptive controller's demand signal.
    pub fn lane_consumed_bytes(&self, lane_idx: usize) -> u64 {
        self.lanes[lane_idx].consumed_bytes.load(Ordering::Relaxed)
    }

    /// Number of staging files that still have unconsumed capacity across
    /// all lanes.  Lock-free: sums the per-lane mirrors.
    pub fn unconsumed_files(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| l.unconsumed.load(Ordering::Relaxed))
            .sum()
    }

    /// Whether any lane has fallen below its low watermark and background
    /// provisioning should run.
    pub fn needs_provisioning(&self) -> bool {
        self.lanes_below_low.load(Ordering::Relaxed) > 0
    }

    /// Number of staging files created so far, from every source
    /// (pre-allocated at startup, background-provisioned, and emergency
    /// inline creations).
    pub fn files_created(&self) -> u64 {
        self.created_preallocated.load(Ordering::Relaxed)
            + self.created_inline.load(Ordering::Relaxed)
            + self.created_background.load(Ordering::Relaxed)
    }

    /// Staging files pre-allocated at startup.
    pub fn files_created_preallocated(&self) -> u64 {
        self.created_preallocated.load(Ordering::Relaxed)
    }

    /// Staging files created inline on the foreground write path because
    /// the pool ran dry — the number the daemon exists to keep at zero.
    pub fn files_created_inline(&self) -> u64 {
        self.created_inline.load(Ordering::Relaxed)
    }

    /// Staging files provisioned asynchronously by maintenance workers.
    pub fn files_created_background(&self) -> u64 {
        self.created_background.load(Ordering::Relaxed)
    }

    /// Pops a fully-unconsumed file off `inner`'s tail, if one exists.
    /// Only a file the lane's cursor has not touched may move: either a
    /// file strictly beyond the active one, or the active slot itself if
    /// it is still pristine.
    fn pop_pristine(inner: &mut LaneInner) -> Option<StagingFile> {
        let can_pop = match inner.files.len().checked_sub(1) {
            Some(last) if last > inner.active => true,
            Some(last) if last == inner.active => inner.files[last].consumed == 0,
            _ => false,
        };
        if can_pop {
            inner.files.pop()
        } else {
            None
        }
    }

    /// Steals one fully-unconsumed staging file for `dest` from the lane
    /// with the globally longest free list.  Returns `None` only when no
    /// other lane has a file to spare — inline creation is strictly the
    /// everything-is-dry fallback.
    fn steal_for(&self, dest: usize) -> Option<StagingFile> {
        // Candidate victims in descending free-list length.  Pass 1
        // `try_lock`s each: blocking on — or squatting near — another
        // lane's hot lock would put this stealer on that lane's owner's
        // critical path, which is exactly what lanes exist to avoid, so
        // a busy victim is skipped for the next-longest one.  Pass 2,
        // reached only when every spare-holding lane was momentarily
        // busy, blocks on them in turn: a short wait on a victim's lock
        // is still far cheaper (and quieter) than creating a file inline
        // while spares exist.
        let mut victims: Vec<usize> = (0..self.lanes.len())
            .filter(|&i| i != dest && self.lanes[i].unconsumed.load(Ordering::Relaxed) > 0)
            .collect();
        victims
            .sort_by_key(|&i| std::cmp::Reverse(self.lanes[i].unconsumed.load(Ordering::Relaxed)));
        for pass in 0..2 {
            for &victim in &victims {
                let lane = &self.lanes[victim];
                if pass > 0 && lane.unconsumed.load(Ordering::Relaxed) == 0 {
                    continue;
                }
                let inner = if pass == 0 {
                    lane.inner.try_lock()
                } else {
                    Some(lane.inner.lock())
                };
                let Some(mut inner) = inner else { continue };
                let Some(file) = Self::pop_pristine(&mut inner) else {
                    continue;
                };
                lane.refresh_unconsumed(&inner);
                drop(inner);
                self.refresh_pressure(victim);
                // Index update happens outside any lane lock (lock-ordering
                // rule: the index is never acquired while a lane is held).
                self.index.write().insert(file.ino, dest);
                self.device.stats().add_staging_lane_steal();
                obs::event(obs::SpanEvent::LaneSteal);
                return Some(file);
            }
        }
        None
    }

    /// Releases pristine files a lane holds **beyond** its high watermark:
    /// each is truncated to zero — its blocks return to the allocator —
    /// and dropped from the pool (the `stage-N` name stays on disk, empty,
    /// and is re-adopted or re-extended if the pool grows back).  This is
    /// the shrink half of adaptive provisioning: lowering a lane's
    /// watermarks alone only stops *new* provisioning; releasing the
    /// surplus is what gives burst-peak staging space back.  Returns the
    /// number of files released.  Skips a busy lane (`try_lock`) — the
    /// next maintenance tick retries.
    pub fn release_surplus(&self, lane_idx: usize) -> usize {
        let lane = &self.lanes[lane_idx];
        let mut released = Vec::new();
        {
            let Some(mut inner) = lane.inner.try_lock() else {
                return 0;
            };
            let high = lane.high_wm.load(Ordering::Relaxed);
            while inner.files.len().saturating_sub(inner.active) > high {
                match Self::pop_pristine(&mut inner) {
                    Some(file) => released.push(file),
                    None => break,
                }
            }
            lane.refresh_unconsumed(&inner);
        }
        self.refresh_pressure(lane_idx);
        let count = released.len();
        for file in released {
            self.index.write().remove(&file.ino);
            let _ = self.kernel.ftruncate(file.fd, 0);
            let _ = self.kernel.close(file.fd);
        }
        count
    }

    /// Takes up to `len` bytes of staging space whose in-file offset is
    /// congruent to `phase` modulo the block size, so that a later relink of
    /// the target range can stay block-aligned.  Returns an allocation that
    /// may be shorter than `len`; callers loop until satisfied.
    ///
    /// Routed to the calling thread's home lane: concurrent takers on
    /// different lanes proceed without synchronizing at all.
    pub fn take(&self, len: u64, phase: u64) -> FsResult<StagingAllocation> {
        let cost = self.device.cost().clone();
        self.device.charge_software(cost.usplit_staging_take_ns);
        let lane_idx = self.home_lane();
        let lane = &self.lanes[lane_idx];
        let mut inner = self.lock_lane(lane_idx);
        loop {
            if inner.active >= inner.files.len() {
                // The home lane is dry.  The lock is dropped while a
                // replacement is found so concurrent takers sharing the
                // lane and the daemon can still make progress.
                drop(inner);
                let file = match self.steal_for(lane_idx) {
                    Some(file) => file,
                    None => {
                        // Every lane is dry and the daemon has not kept
                        // pace (or is disabled): replenish inline.
                        let name = self.reserve_name();
                        let file = self.build_staging_file(name)?;
                        self.index.write().insert(file.ino, lane_idx);
                        self.created_inline.fetch_add(1, Ordering::Relaxed);
                        self.device.stats().add_staging_inline_create();
                        obs::event(obs::SpanEvent::InlineCreate);
                        file
                    }
                };
                inner = self.lock_lane(lane_idx);
                inner.files.push(file);
                lane.refresh_unconsumed(&inner);
                self.refresh_pressure(lane_idx);
                continue;
            }
            let active = inner.active;
            let file = &mut inner.files[active];
            // Align the cursor to the requested phase within a block.
            let misalign =
                (phase + BLOCK_SIZE as u64 - file.cursor % BLOCK_SIZE as u64) % BLOCK_SIZE as u64;
            let start = file.cursor + misalign;
            if start >= file.size {
                inner.active += 1;
                lane.refresh_unconsumed(&inner);
                self.refresh_pressure(lane_idx);
                continue;
            }
            let avail = file.size - start;
            let take = avail.min(len);
            if take == 0 {
                inner.active += 1;
                lane.refresh_unconsumed(&inner);
                self.refresh_pressure(lane_idx);
                continue;
            }
            let (device_offset, contig) = file
                .mapping
                .translate(start)
                .ok_or_else(|| vfs::FsError::Io("staging file mapping hole".into()))?;
            let take = take.min(contig);
            file.cursor = start + take;
            file.consumed += take;
            let out = StagingAllocation {
                staging_ino: file.ino,
                staging_fd: file.fd,
                staging_offset: start,
                device_offset,
                len: take,
            };
            lane.consumed_bytes.fetch_add(take, Ordering::Relaxed);
            return Ok(out);
        }
    }

    /// Finds the lane currently holding the staging file `ino` and runs
    /// `f` on its locked inner state (membership is verified under the
    /// lane's lock), returning the lane index alongside `f`'s result.
    /// The indexed lane is probed first, with a full scan as fallback —
    /// the index can be transiently stale while a file is mid-steal or
    /// in recycle limbo.  The single resolution path shared by every
    /// by-inode lookup (`note_retired`/`translate`/`fd_for`/`lane_of`),
    /// so the staleness rule cannot diverge between them.
    fn with_file_lane<R>(
        &self,
        ino: u64,
        mut f: impl FnMut(&mut LaneInner) -> R,
    ) -> Option<(usize, R)> {
        // Copy the indexed lane out so the pool-wide index read guard is
        // released *before* the lane mutex is acquired — blocking on a
        // busy lane while pinning the index would stall every writer of
        // the index (provisioning, steals, releases) pool-wide.
        let indexed = self.index.read().get(&ino).copied();
        if let Some(lane_idx) = indexed {
            let mut inner = self.lanes[lane_idx].inner.lock();
            if inner.files.iter().any(|file| file.ino == ino) {
                return Some((lane_idx, f(&mut inner)));
            }
        }
        for (lane_idx, lane) in self.lanes.iter().enumerate() {
            let mut inner = lane.inner.lock();
            if inner.files.iter().any(|file| file.ino == ino) {
                return Some((lane_idx, f(&mut inner)));
            }
        }
        None
    }

    /// Records that `len` bytes staged in `staging_ino` were retired
    /// (relinked or copied into its target).  Feeds the recyclability
    /// accounting: an exhausted file whose retired bytes catch up with
    /// its consumed bytes can be recycled.
    pub fn note_retired(&self, staging_ino: u64, len: u64) {
        self.with_file_lane(staging_ino, |inner| {
            if let Some(file) = inner.files.iter_mut().find(|f| f.ino == staging_ino) {
                file.retired = (file.retired + len).min(file.consumed);
            }
        });
    }

    /// Takes one recyclable staging file out of the pool: a file some
    /// lane's cursor has moved past (no future `take` touches it) whose
    /// staged bytes were all retired.  The caller appends the durable
    /// `StagingRecycle` log marker, then calls [`StagingPool::rebuild`]
    /// (or [`StagingPool::abort_recycle`] on failure).
    pub fn begin_recycle(&self) -> Option<RecycledFile> {
        for (lane_idx, lane) in self.lanes.iter().enumerate() {
            // `try_lock`: a lane busy serving takes is skipped this pass —
            // holding its lock here would put the recycler's sweep on the
            // foreground append path's critical section.
            let Some(mut inner) = lane.inner.try_lock() else {
                continue;
            };
            let Some(idx) = inner.files[..inner.active]
                .iter()
                .position(|f| f.consumed > 0 && f.retired >= f.consumed)
            else {
                continue;
            };
            let file = inner.files.remove(idx);
            inner.active -= 1;
            lane.refresh_unconsumed(&inner);
            self.refresh_pressure(lane_idx);
            return Some(RecycledFile {
                file,
                lane: lane_idx,
            });
        }
        None
    }

    /// Re-provisions a recycled file: frees its remaining blocks,
    /// pre-allocates fresh ones, remaps it and returns it to **its own
    /// lane's** unconsumed tail (so recycling never migrates capacity
    /// between lanes behind the adaptive controller's back).
    pub fn rebuild(&self, rec: RecycledFile) -> FsResult<()> {
        let RecycledFile {
            file,
            lane: lane_idx,
        } = rec;
        // Free whatever blocks the relinks left behind (padding, copied
        // spans), then pre-allocate the full size again.
        let rebuild = (|| -> FsResult<DaxMapping> {
            self.kernel.ftruncate(file.fd, 0)?;
            self.kernel.ftruncate(file.fd, file.size)?;
            self.kernel.dax_map(file.fd, 0, file.size, self.populate)
        })();
        let mapping = match rebuild {
            Ok(mapping) => mapping,
            Err(e) => {
                // The file is dropped from the pool; forget its lane.
                self.index.write().remove(&file.ino);
                return Err(e);
            }
        };
        self.index.write().insert(file.ino, lane_idx);
        let lane = &self.lanes[lane_idx];
        let mut inner = lane.inner.lock();
        inner.files.push(StagingFile {
            fd: file.fd,
            ino: file.ino,
            mapping,
            cursor: 0,
            size: file.size,
            consumed: 0,
            retired: 0,
        });
        lane.refresh_unconsumed(&inner);
        drop(inner);
        self.refresh_pressure(lane_idx);
        self.device.stats().add_staging_recycle();
        Ok(())
    }

    /// Puts a file taken by [`StagingPool::begin_recycle`] back untouched
    /// in its lane (the recycle marker could not be made durable).
    pub fn abort_recycle(&self, rec: RecycledFile) {
        let lane_idx = rec.lane;
        let lane = &self.lanes[lane_idx];
        let mut inner = lane.inner.lock();
        // Re-insert before the active index: the file is exhausted.
        inner.files.insert(0, rec.file);
        inner.active += 1;
        lane.refresh_unconsumed(&inner);
        drop(inner);
        self.refresh_pressure(lane_idx);
    }

    /// Translates a (staging_ino, staging_offset) pair back to a device
    /// offset; used by the read path for staged-but-not-yet-relinked data
    /// and by crash recovery.
    pub fn translate(&self, staging_ino: u64, staging_offset: u64) -> Option<(u64, u64)> {
        self.with_file_lane(staging_ino, |inner| {
            inner
                .files
                .iter()
                .find(|f| f.ino == staging_ino)
                .and_then(|f| f.mapping.translate(staging_offset))
        })
        .and_then(|(_, hit)| hit)
    }

    /// Returns the kernel descriptor for a staging file by inode.
    pub fn fd_for(&self, staging_ino: u64) -> Option<Fd> {
        self.with_file_lane(staging_ino, |inner| {
            inner
                .files
                .iter()
                .find(|f| f.ino == staging_ino)
                .map(|f| f.fd)
        })
        .and_then(|(_, fd)| fd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::Mode;
    use pmem::PmemBuilder;

    fn setup_with(config: SplitConfig) -> (Arc<PmemDevice>, Arc<Ext4Dax>, StagingPool) {
        let device = PmemBuilder::new(256 * 1024 * 1024)
            .track_persistence(false)
            .build();
        let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
        let pool = StagingPool::new(
            Arc::clone(&kernel),
            Arc::clone(&device),
            "/.splitfs",
            &config,
        )
        .unwrap();
        (device, kernel, pool)
    }

    fn setup() -> (Arc<PmemDevice>, Arc<Ext4Dax>, StagingPool) {
        setup_with(SplitConfig::new(Mode::Posix).with_staging(2, 4 * 1024 * 1024))
    }

    #[test]
    fn pool_preallocates_staging_files() {
        let (_d, kernel, pool) = setup();
        assert_eq!(pool.files_created(), 2);
        assert_eq!(pool.files_created_preallocated(), 2);
        assert_eq!(pool.files_created_inline(), 0);
        assert_eq!(pool.unconsumed_files(), 2);
        let entries = kernel.readdir("/.splitfs").unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries.contains(&"stage-0".to_string()));
    }

    #[test]
    fn allocations_do_not_overlap() {
        let (_d, _k, pool) = setup();
        let a = pool.take(4096, 0).unwrap();
        let b = pool.take(4096, 0).unwrap();
        assert_ne!(a.device_offset, b.device_offset);
        assert!(a.staging_offset + a.len <= b.staging_offset || a.staging_ino != b.staging_ino);
    }

    #[test]
    fn phase_alignment_is_respected() {
        let (_d, _k, pool) = setup();
        let a = pool.take(1000, 100).unwrap();
        assert_eq!(a.staging_offset % BLOCK_SIZE as u64, 100);
        let b = pool.take(4096, 0).unwrap();
        assert_eq!(b.staging_offset % BLOCK_SIZE as u64, 0);
    }

    #[test]
    fn exhausting_preallocated_files_replenishes_inline() {
        let (device, _k, pool) = setup();
        // 2 files x 4 MiB; take 3 MiB chunks until we exceed the initial
        // capacity and force an inline replenish.
        let mut taken = 0u64;
        while taken < 10 * 1024 * 1024 {
            let a = pool.take(3 * 1024 * 1024, 0).unwrap();
            assert!(a.len > 0);
            taken += a.len;
        }
        assert!(pool.files_created() > 2);
        assert!(
            pool.files_created_inline() > 0,
            "emergency creations are attributed to the inline counter"
        );
        assert_eq!(pool.files_created_background(), 0);
        assert_eq!(
            device.stats().snapshot().staging_inline_creates,
            pool.files_created_inline(),
            "device-wide statistic mirrors the pool counter"
        );
    }

    #[test]
    fn background_provisioning_prevents_inline_creation() {
        let config = SplitConfig::new(Mode::Posix)
            .with_staging(2, 4 * 1024 * 1024)
            .with_staging_watermarks(2, 4);
        let (device, _k, pool) = setup_with(config);
        // Drain most of the pre-allocated capacity, then provision like the
        // daemon would before the pool runs dry.
        let mut taken = 0u64;
        while taken < 7 * 1024 * 1024 {
            taken += pool.take(1024 * 1024, 0).unwrap().len;
        }
        assert!(pool.needs_provisioning());
        pool.provision_one().unwrap();
        pool.provision_one().unwrap();
        assert!(!pool.needs_provisioning());
        while taken < 14 * 1024 * 1024 {
            taken += pool.take(1024 * 1024, 0).unwrap().len;
        }
        assert_eq!(pool.files_created_inline(), 0);
        assert_eq!(pool.files_created_background(), 2);
        assert_eq!(device.stats().snapshot().staging_bg_creates, 2);
        assert_eq!(device.stats().snapshot().staging_inline_creates, 0);
    }

    #[test]
    fn translate_finds_staged_locations() {
        let (_d, _k, pool) = setup();
        let a = pool.take(8192, 0).unwrap();
        let (dev, contig) = pool.translate(a.staging_ino, a.staging_offset).unwrap();
        assert_eq!(dev, a.device_offset);
        assert!(contig >= a.len);
        assert!(pool.translate(9999, 0).is_none());
    }

    #[test]
    fn reserve_name_is_lock_free_and_monotonic_under_concurrency() {
        let (_d, _k, pool) = setup();
        // Names 0 and 1 were consumed by the pre-allocated pool.
        let names = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = &pool;
                let names = &names;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    for _ in 0..256 {
                        mine.push(pool.reserve_name());
                    }
                    names.lock().unwrap().extend(mine);
                });
            }
        });
        let mut names = names.into_inner().unwrap();
        assert_eq!(names.len(), 1024);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 1024, "duplicate staging-file names");
        assert_eq!(*names.first().unwrap(), 2);
        assert_eq!(*names.last().unwrap(), 2 + 1024 - 1);
    }

    #[test]
    fn lanes_follow_the_configured_count_and_distribute_files() {
        let config = SplitConfig::new(Mode::Posix)
            .with_staging(8, 4 * 1024 * 1024)
            .with_staging_lanes(4);
        let (_d, _k, pool) = setup_with(config);
        assert_eq!(pool.lane_count(), 4);
        for i in 0..4 {
            assert_eq!(pool.lane_unconsumed(i), 2, "round-robin distribution");
        }
    }

    #[test]
    fn lane_exhaustion_steals_from_the_longest_free_list_before_inline() {
        let config = SplitConfig::new(Mode::Posix)
            .with_staging(4, 4 * 1024 * 1024)
            .with_staging_lanes(2);
        let (device, _k, pool) = setup_with(config);
        let my_lane = pool.lane_for_current_thread();
        let other = 1 - my_lane;
        assert_eq!(pool.lane_unconsumed(my_lane), 2);
        // Drain the home lane's two files plus more: the third and fourth
        // files must come from the other lane (steals), and only then may
        // an inline creation happen.
        let mut taken = 0u64;
        while taken < 15 * 1024 * 1024 {
            taken += pool.take(4 * 1024 * 1024, 0).unwrap().len;
        }
        let s = device.stats().snapshot();
        assert_eq!(s.staging_lane_steals, 2, "both spare files were stolen");
        assert_eq!(
            pool.files_created_inline(),
            0,
            "no inline creation while another lane had spares"
        );
        assert_eq!(pool.lane_unconsumed(other), 0);
        // One more full file's worth now requires an inline creation.
        while taken < 17 * 1024 * 1024 {
            taken += pool.take(4 * 1024 * 1024, 0).unwrap().len;
        }
        assert!(pool.files_created_inline() > 0);
    }

    #[test]
    fn takes_from_distinct_threads_route_to_distinct_lanes() {
        let config = SplitConfig::new(Mode::Posix)
            .with_staging(8, 4 * 1024 * 1024)
            .with_staging_lanes(4);
        let (device, _k, pool) = setup_with(config);
        let lanes = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = &pool;
                let lanes = &lanes;
                scope.spawn(move || {
                    for _ in 0..64 {
                        pool.take(4096, 0).unwrap();
                    }
                    lanes.lock().unwrap().push(pool.lane_for_current_thread());
                });
            }
        });
        let mut lanes = lanes.into_inner().unwrap();
        lanes.sort_unstable();
        assert_eq!(lanes, vec![0, 1, 2, 3], "four writers, four distinct lanes");
        assert_eq!(
            device.stats().snapshot().staging_lock_waits,
            0,
            "disjoint lanes never contend"
        );
    }

    #[test]
    fn adaptive_watermark_setter_counts_only_real_changes() {
        let config = SplitConfig::new(Mode::Posix)
            .with_staging(2, 4 * 1024 * 1024)
            .with_staging_lanes(2);
        let (device, _k, pool) = setup_with(config);
        let (low, high) = pool.lane_watermarks(0);
        assert!(!pool.set_lane_watermarks(0, low, high), "no-op not counted");
        assert_eq!(device.stats().snapshot().staging_adaptive_resizes, 0);
        assert!(pool.set_lane_watermarks(0, low + 2, high + 4));
        assert_eq!(pool.lane_watermarks(0), (low + 2, high + 4));
        assert_eq!(device.stats().snapshot().staging_adaptive_resizes, 1);
        // The setter enforces high > low.
        pool.set_lane_watermarks(1, 3, 3);
        assert_eq!(pool.lane_watermarks(1), (3, 4));
    }

    #[test]
    fn surplus_release_returns_burst_capacity_to_the_allocator() {
        let config = SplitConfig::new(Mode::Posix)
            .with_staging(2, 4 * 1024 * 1024)
            .with_staging_watermarks(1, 3);
        let (_d, kernel, pool) = setup_with(config);
        // Burst: provision well past the high watermark (as a hot phase
        // would), then shrink back.
        for _ in 0..4 {
            pool.provision_one().unwrap();
        }
        assert_eq!(pool.unconsumed_files(), 6);
        let released = pool.release_surplus(0);
        assert_eq!(released, 3, "trimmed back down to the high watermark");
        assert_eq!(pool.unconsumed_files(), 3);
        // Released names stay on disk, empty — their blocks are free.
        let empties = kernel
            .readdir("/.splitfs")
            .unwrap()
            .iter()
            .filter(|n| {
                kernel
                    .stat(&format!("/.splitfs/{n}"))
                    .map(|s| s.size == 0)
                    .unwrap_or(false)
            })
            .count();
        assert_eq!(empties, 3);
        // At or below the watermark: nothing further to release.
        assert_eq!(pool.release_surplus(0), 0);
    }

    #[test]
    fn consumed_bytes_feed_the_lane_demand_signal() {
        let (_d, _k, pool) = setup();
        let lane = pool.lane_for_current_thread();
        assert_eq!(pool.lane_consumed_bytes(lane), 0);
        let a = pool.take(10_000, 0).unwrap();
        assert_eq!(pool.lane_consumed_bytes(lane), a.len);
    }
}
