//! SplitFS: a user-space library file system for persistent memory.
//!
//! This crate is the primary contribution of the reproduced paper
//! (*SplitFS: Reducing Software Overhead in File Systems for Persistent
//! Memory*, SOSP 2019).  The design splits file-system responsibilities:
//!
//! * **U-Split** (this crate, [`SplitFs`]) serves data operations in user
//!   space: reads and overwrites become loads and stores on memory-mapped
//!   file regions, appends are staged in pre-allocated staging files, and
//!   in strict mode every data operation is made atomic through a 64-byte,
//!   single-fence operation log.
//! * **K-Split** ([`kernelfs::Ext4Dax`]) handles every metadata operation
//!   and provides the journaled, atomic [`relink`](kernelfs::Ext4Dax::ioctl_relink)
//!   primitive that moves staged blocks into target files without copying
//!   data.
//!
//! ```
//! use splitfs::{SplitConfig, SplitFs, Mode};
//! use vfs::{FileSystem, OpenFlags};
//!
//! let device = pmem::PmemBuilder::new(256 * 1024 * 1024).build();
//! let kernel = kernelfs::Ext4Dax::mkfs(device).unwrap();
//! let fs = SplitFs::new(kernel, SplitConfig::new(Mode::Strict)).unwrap();
//!
//! let fd = fs.open("/data.log", OpenFlags::create()).unwrap();
//! fs.append(fd, b"hello persistent world").unwrap();
//! fs.fsync(fd).unwrap();
//! assert_eq!(fs.read_file("/data.log").unwrap(), b"hello persistent world");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod fs;
pub mod mmap_collection;
pub mod modes;
pub mod oplog;
pub mod recovery;
pub mod relink;
pub mod staging;
pub mod state;

pub use config::SplitConfig;
pub use fs::{MemoryUsage, SplitFs, OPLOG_PATH, SPLITFS_DIR};
pub use modes::{Guarantees, Mode};
pub use recovery::{recover, RecoveryReport};
