//! SplitFS: a user-space library file system for persistent memory.
//!
//! This crate is the primary contribution of the reproduced paper
//! (*SplitFS: Reducing Software Overhead in File Systems for Persistent
//! Memory*, SOSP 2019).  The design splits file-system responsibilities:
//!
//! * **U-Split** (this crate, [`SplitFs`]) serves data operations in user
//!   space: reads and overwrites become loads and stores on memory-mapped
//!   file regions, appends are staged in pre-allocated staging files, and
//!   in strict mode every data operation is made atomic through a 64-byte,
//!   single-fence operation log.
//! * **K-Split** ([`kernelfs::Ext4Dax`]) handles every metadata operation
//!   and provides the journaled, atomic relink primitive that moves staged
//!   blocks into target files without copying data — submitted in bulk
//!   through [`kernelfs::Ext4Dax::ioctl_relink_batch`], so one journal
//!   transaction covers every staged extent an `fsync` retires.
//!
//! **Many instances, one kernel**: any number of [`SplitFs`] instances
//! (the paper's one-per-process deployment) can be mounted concurrently
//! over a single shared [`kernelfs::Ext4Dax`].  Each instance leases an
//! exclusive staging-directory slice and a dedicated operation-log file
//! from the kernel ([`kernelfs::lease`]); log entries are tagged with the
//! instance id, and [`recovery`] replays each instance's log
//! independently — instance B recovers intact even when instance A
//! crashed mid-relink.
//!
//! The batching machinery is the *public contract*, not internal plumbing:
//! SplitFS implements the full zero-copy / vectored / batch-durable
//! [`vfs::FileSystem`] surface —
//!
//! * [`vfs::FileSystem::read_view`] serves committed, mapped ranges as
//!   **zero-copy borrows** of the collection of mmaps (no memcpy; staged
//!   overlays and holes fall back to an owned buffer);
//! * [`vfs::FileSystem::appendv`] / [`vfs::FileSystem::writev_at`] gather
//!   N slices into cursor-contiguous staging space, make them durable with
//!   **one fence**, and group-commit their operation-log entries under one
//!   more ([`oplog::OpLog::append_batch`]) — two fences per gathered
//!   record where N plain appends cost 2N.  The end of file is resolved
//!   under the file-state lock, so concurrent appenders can never
//!   interleave into overlapping offsets;
//! * [`vfs::FileSystem::fsync_many`] retires the staged extents of M
//!   files through a single `ioctl_relink_batch` — one kernel trap and
//!   **one journal transaction** for the whole set.
//!
//! # Architecture
//!
//! The crate is organized as a foreground data path plus a background
//! maintenance subsystem:
//!
//! * [`fs`] — the POSIX-like entry points ([`SplitFs`]), per-mode routing
//!   of reads/overwrites/appends, and the operation-log full handling
//!   (epoch seal, or on-demand log growth while the sealed half is still
//!   being retired — never a stall, never a deadlock).  The per-file
//!   registry and the descriptor table are **sharded**
//!   ([`state::ShardedRegistry`], [`state::ShardedFdTable`]), so the
//!   append hot path has no global U-Split lock;
//! * [`staging`] — the **lane-sharded** pool of pre-allocated, pre-mapped
//!   staging files the append path carves allocations out of: each lane
//!   owns its own active file, cursor and free list behind its own lock,
//!   `take` routes by thread (disjoint writers never contend), a dry lane
//!   steals from the globally longest free list before falling back to
//!   inline creation, with separate counters for pre-allocated,
//!   background-provisioned and emergency inline file creations, and
//!   **recycling**: a fully-relinked staging file is truncated,
//!   re-provisioned and returned to its lane behind a durable
//!   `StagingRecycle` log marker instead of leaking;
//! * [`adaptive`] — the adaptive provisioning controller: per-lane
//!   consumption rates (bytes per simulated millisecond over a sliding
//!   window) size each lane's low/high watermarks, so hot lanes get
//!   staging files ahead of demand while idle lanes shrink back to the
//!   configured floor;
//! * [`batch`] — planning: staged extents are coalesced into runs and
//!   split into block-aligned [`kernelfs::RelinkOp`]s plus unaligned
//!   head/tail copy spans;
//! * [`relink`] — the user-space half of relink: submits the planned ops
//!   through the batched kernel entry point, retains the staging mappings
//!   for the target's mmap collection, and emits `Invalidate` markers;
//! * [`oplog`] — the single-fence redo log as a **two-epoch segment-swap
//!   log**: group commit ([`oplog::OpLog::append_batch`]: many entries,
//!   one fence), truncation by sealing the active half and re-zeroing it
//!   only after its files are retired ([`oplog::OpLog::try_seal`] /
//!   [`oplog::OpLog::truncate_sealed`] — no stop-the-world), and
//!   on-demand growth that extends the active epoch's extent list while
//!   preserving the sealed/active split;
//! * [`daemon`] — the **background maintenance daemon**
//!   ([`daemon::MaintenanceDaemon`]): worker threads with **per-worker
//!   queues** (relinks route by inode) that replenish the staging pool
//!   before it runs dry, relink heavily-staged files in the background,
//!   recycle exhausted staging files, and retire sealed log epochs one
//!   file-state lock at a time, so the foreground never performs file
//!   creation or log truncation on the critical path;
//! * [`rings`] — the **async ring backend**: drained submission batches
//!   from [`aio`] rings stage writes to *unrelated files* together,
//!   share one data fence and one log group commit across the whole
//!   batch (two fences for K writes where the synchronous path pays
//!   2K), and complete with the **durability epoch** — the highest
//!   fenced operation-log sequence number — so callers await
//!   `published_epoch() >= cqe.epoch` instead of issuing `fsync`;
//! * [`recovery`] — idempotent, **per-instance** crash recovery by log
//!   replay: orphaned leases name the crashed instances, each orphan's
//!   log replays independently (foreign-tagged entries are refused), and
//!   recovered contents are identical whether a crash lands before,
//!   during, or after a background batch relink;
//! * [`config`] / [`modes`] / [`state`] / [`mmap_collection`] — tunables
//!   (including [`DaemonConfig`]), the three consistency modes, and the
//!   DRAM bookkeeping structures.
//!
//! ```
//! use splitfs::{SplitConfig, SplitFs, Mode};
//! use vfs::{FileSystem, OpenFlags};
//!
//! let device = pmem::PmemBuilder::new(256 * 1024 * 1024).build();
//! let kernel = kernelfs::Ext4Dax::mkfs(device).unwrap();
//! // The maintenance daemon starts by default; `SplitConfig::without_daemon`
//! // restores the seed's inline-maintenance behaviour for ablations.
//! let fs = SplitFs::new(kernel, SplitConfig::new(Mode::Strict)).unwrap();
//!
//! let fd = fs.open("/data.log", OpenFlags::create()).unwrap();
//! fs.append(fd, b"hello persistent world").unwrap();
//! fs.fsync(fd).unwrap();
//! assert_eq!(fs.read_file("/data.log").unwrap(), b"hello persistent world");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod batch;
pub mod config;
pub mod daemon;
pub mod fs;
pub mod mmap_collection;
pub mod modes;
pub mod oplog;
pub mod recovery;
pub mod relink;
pub mod rings;
pub mod staging;
pub mod state;

pub use config::{DaemonConfig, SplitConfig};
pub use fs::{MemoryUsage, SplitFs, OPLOG_PATH, SPLITFS_DIR};
pub use modes::{Guarantees, Mode};
pub use recovery::{recover, recover_instance, recover_orphans, RecoveryReport};
pub use rings::{ring_hub, SplitRingBackend};
