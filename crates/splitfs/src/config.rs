//! Tunable parameters of a SplitFS instance (paper §3.6).

use crate::modes::Mode;

/// Configuration of the background maintenance daemon (paper §3.3: staging
/// pre-allocation and garbage collection happen "on a background thread").
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonConfig {
    /// Whether maintenance workers run at all.  With this off, staging
    /// replenishment, log truncation and relink all happen inline on the
    /// foreground paths (the seed's behaviour, kept for ablation).
    pub enabled: bool,
    /// Number of maintenance worker threads.
    pub workers: usize,
    /// When fewer than this many unconsumed staging files remain, a worker
    /// starts provisioning replacements.
    pub staging_low_watermark: usize,
    /// Workers provision until this many unconsumed staging files exist.
    pub staging_high_watermark: usize,
    /// Maximum number of relink ops submitted per `ioctl_relink_batch`
    /// call; larger batches amortize the journal transaction further but
    /// hold the kernel lock longer.
    pub relink_batch_size: usize,
    /// When the operation log passes this fill fraction, a worker performs
    /// a background checkpoint (batched relink of every dirty file plus a
    /// group-commit truncate of the log) so the foreground never hits a
    /// full log.
    pub oplog_checkpoint_fraction: f64,
    /// Whether workers adaptively resize each staging lane's watermarks
    /// from its measured consumption rate (bytes per simulated
    /// millisecond).  With this off, every lane keeps the static
    /// `staging_low_watermark`/`staging_high_watermark` split.
    pub adaptive_watermarks: bool,
    /// Sliding-window length, in **simulated** milliseconds, over which a
    /// lane's consumption rate is measured.
    pub adapt_window_ms: f64,
    /// How far ahead, in simulated milliseconds, provisioning runs: a
    /// lane's high watermark is sized to cover `rate × horizon` bytes of
    /// demand.
    pub adapt_horizon_ms: f64,
    /// Upper bound on any single lane's adaptively-sized high watermark
    /// (a runaway rate estimate must not provision the device full of
    /// staging files).
    pub adapt_lane_cap: usize,
    /// A file whose staged extents have not grown for this many simulated
    /// milliseconds is *cold*: under staging-space pressure the daemon
    /// relinks it so its staging files become recyclable.
    pub cold_relink_after_ms: f64,
    /// A fully relinked file that has not been read or written for this
    /// many simulated milliseconds is a **demotion candidate**: on a
    /// tiered device the maintenance tick moves its blocks to the
    /// capacity tier ([`crate::SplitFs::sweep_tier_demotions`]).  The
    /// threshold adapts to PM pressure — at the watermark a candidate
    /// must be idle this long, and the requirement shrinks as PM fills.
    pub tier_demote_after_ms: f64,
    /// Demotion runs only while PM utilization (allocated fraction of
    /// the PM data region) is at or above this watermark; below it the
    /// fast tier has room and nothing moves.
    pub tier_pm_watermark: f64,
    /// QoS cap on demotion traffic: at most this many bytes are migrated
    /// to the capacity tier per maintenance tick.  Candidates deferred by
    /// an exhausted budget are counted in `tier_bandwidth_deferrals`.
    pub tier_bandwidth_per_tick: u64,
    /// Heat threshold for promotion: once a demoted file serves this many
    /// reads from the capacity tier it is promoted back to PM (writes
    /// promote immediately — a written file is hot by definition).
    pub tier_promote_after_reads: u32,
}

impl DaemonConfig {
    /// Daemon enabled with the scaled-down defaults.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            workers: 1,
            staging_low_watermark: 1,
            staging_high_watermark: 3,
            relink_batch_size: 64,
            oplog_checkpoint_fraction: 0.5,
            adaptive_watermarks: true,
            adapt_window_ms: 4.0,
            adapt_horizon_ms: 2.0,
            adapt_lane_cap: 64,
            cold_relink_after_ms: 8.0,
            tier_demote_after_ms: 10.0,
            tier_pm_watermark: 0.7,
            tier_bandwidth_per_tick: 8 * 1024 * 1024,
            tier_promote_after_reads: 2,
        }
    }

    /// Daemon disabled: all maintenance happens inline (ablation mode).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::enabled()
        }
    }
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self::enabled()
    }
}

/// Configuration of a U-Split instance.
///
/// The defaults follow the paper but are scaled down to fit the emulated
/// devices the test-suite and benchmark harness create (the paper's 160 MiB
/// staging files and 128 MiB operation log assume a multi-hundred-gigabyte
/// PM module).  [`SplitConfig::paper_defaults`] restores the exact paper
/// values for experiments run on large devices.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitConfig {
    /// Consistency mode of this instance.
    pub mode: Mode,
    /// Granularity of target-file memory mappings.  The paper supports
    /// 2 MiB – 512 MiB; 2 MiB is the default so huge pages can be used.
    pub mmap_size: u64,
    /// Number of staging files pre-allocated at startup.
    pub staging_files: usize,
    /// Size of each staging file in bytes.
    pub staging_file_size: u64,
    /// Number of lanes the staging pool is partitioned into (each lane
    /// owns its own active file, cursor and free list behind its own
    /// lock; `take` routes by thread).  `0` means automatic: one lane per
    /// maintenance worker.
    pub staging_lanes: usize,
    /// Size of the operation log in bytes (64 B per entry).
    pub oplog_size: u64,
    /// Ablation switch (Figure 3): route appends through staging files.
    /// With this off, appends fall through to the kernel file system.
    pub use_staging: bool,
    /// Ablation switch (Figure 3): use the relink ioctl on `fsync`.  With
    /// this off, staged appends are copied into the target file instead of
    /// being relinked.
    pub use_relink: bool,
    /// Pre-fault mappings when they are created (`MAP_POPULATE`).
    pub populate_mmaps: bool,
    /// Replay the operation logs of orphaned (crashed) instances before
    /// this instance starts (see [`crate::recovery::recover_orphans`]).
    /// On by default; crash tests that stage an orphan deliberately and
    /// drive its recovery by hand turn it off.
    pub recover_orphans_on_mount: bool,
    /// Background maintenance daemon parameters.
    pub daemon: DaemonConfig,
}

impl SplitConfig {
    /// Default configuration (scaled for the emulated devices) in the given
    /// mode.
    pub fn new(mode: Mode) -> Self {
        Self {
            mode,
            mmap_size: 2 * 1024 * 1024,
            staging_files: 4,
            staging_file_size: 16 * 1024 * 1024,
            staging_lanes: 0,
            oplog_size: 8 * 1024 * 1024,
            use_staging: true,
            use_relink: true,
            populate_mmaps: true,
            recover_orphans_on_mount: true,
            daemon: DaemonConfig::default(),
        }
    }

    /// The exact parameter values reported in §3.6 of the paper: ten
    /// 160 MiB staging files and a 128 MiB operation log.
    pub fn paper_defaults(mode: Mode) -> Self {
        Self {
            mode,
            mmap_size: 2 * 1024 * 1024,
            staging_files: 10,
            staging_file_size: 160 * 1024 * 1024,
            staging_lanes: 0,
            oplog_size: 128 * 1024 * 1024,
            use_staging: true,
            use_relink: true,
            populate_mmaps: true,
            recover_orphans_on_mount: true,
            daemon: DaemonConfig::default(),
        }
    }

    /// Sets the mmap granularity (clamped to the paper's 2 MiB – 512 MiB
    /// supported range).
    pub fn with_mmap_size(mut self, size: u64) -> Self {
        self.mmap_size = size.clamp(2 * 1024 * 1024, 512 * 1024 * 1024);
        self
    }

    /// Sets the staging pool shape.
    pub fn with_staging(mut self, files: usize, file_size: u64) -> Self {
        self.staging_files = files.max(1);
        self.staging_file_size = file_size.max(2 * 1024 * 1024);
        self
    }

    /// Sets the number of staging lanes (`0` = automatic, one lane per
    /// maintenance worker).  Concurrent writers stop contending on
    /// staging allocation once the pool has at least one lane per writer
    /// thread.
    pub fn with_staging_lanes(mut self, lanes: usize) -> Self {
        self.staging_lanes = lanes;
        self
    }

    /// The staging-lane count actually in effect: the configured count,
    /// or one lane per maintenance worker when left automatic.
    pub fn effective_staging_lanes(&self) -> usize {
        if self.staging_lanes == 0 {
            self.daemon.workers.max(1)
        } else {
            self.staging_lanes
        }
    }

    /// Sets the operation-log size (minimum one 4 KiB block, i.e. 64
    /// entries).
    pub fn with_oplog_size(mut self, size: u64) -> Self {
        self.oplog_size = size.max(4096);
        self
    }

    /// Disables staging (Figure 3 ablation: "split architecture only").
    pub fn without_staging(mut self) -> Self {
        self.use_staging = false;
        self.use_relink = false;
        self
    }

    /// Disables relink but keeps staging (Figure 3 ablation: staged appends
    /// are copied on `fsync` instead of relinked).
    pub fn without_relink(mut self) -> Self {
        self.use_relink = false;
        self
    }

    /// Replaces the daemon configuration wholesale.
    pub fn with_daemon(mut self, daemon: DaemonConfig) -> Self {
        self.daemon = daemon;
        self
    }

    /// Disables the background maintenance daemon (ablation: the seed's
    /// inline-maintenance behaviour).
    pub fn without_daemon(mut self) -> Self {
        self.daemon.enabled = false;
        self
    }

    /// Disables automatic orphan recovery at mount.  Crash tests use this
    /// to stage a crashed instance and drive its per-instance recovery at
    /// a deterministic point (while other instances keep running).
    pub fn without_orphan_recovery(mut self) -> Self {
        self.recover_orphans_on_mount = false;
        self
    }

    /// Sets the staging-pool watermarks the daemon provisions between.
    pub fn with_staging_watermarks(mut self, low: usize, high: usize) -> Self {
        self.daemon.staging_low_watermark = low.max(1);
        self.daemon.staging_high_watermark = high.max(low.max(1) + 1);
        self
    }

    /// Disables adaptive lane watermarks: every lane keeps the static
    /// low/high split (ablation, and tests that assert exact
    /// provisioning counts).
    pub fn without_adaptive_watermarks(mut self) -> Self {
        self.daemon.adaptive_watermarks = false;
        self
    }

    /// Sets the cold-file relink threshold in simulated milliseconds.
    pub fn with_cold_relink_after_ms(mut self, ms: f64) -> Self {
        self.daemon.cold_relink_after_ms = ms.max(0.0);
        self
    }

    /// Sets the tier-demotion idle threshold in simulated milliseconds.
    pub fn with_tier_demote_after_ms(mut self, ms: f64) -> Self {
        self.daemon.tier_demote_after_ms = ms.max(0.0);
        self
    }

    /// Sets the PM-utilization watermark above which the daemon demotes
    /// idle files to the capacity tier (clamped to `[0, 1]`; `0` demotes
    /// whenever candidates exist, `1` effectively disables demotion).
    pub fn with_tier_pm_watermark(mut self, fraction: f64) -> Self {
        self.daemon.tier_pm_watermark = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-tick demotion bandwidth cap in bytes (minimum one
    /// block, so progress is always possible).
    pub fn with_tier_bandwidth_per_tick(mut self, bytes: u64) -> Self {
        self.daemon.tier_bandwidth_per_tick = bytes.max(4096);
        self
    }

    /// Sets the read-heat threshold at which a demoted file is promoted
    /// back to PM.
    pub fn with_tier_promote_after_reads(mut self, reads: u32) -> Self {
        self.daemon.tier_promote_after_reads = reads.max(1);
        self
    }

    /// Maximum number of 64-byte entries the operation log can hold.
    pub fn oplog_capacity(&self) -> u64 {
        self.oplog_size / 64
    }
}

impl Default for SplitConfig {
    fn default() -> Self {
        Self::new(Mode::Posix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper_shape() {
        let c = SplitConfig::paper_defaults(Mode::Strict);
        assert_eq!(c.mmap_size, 2 * 1024 * 1024);
        assert_eq!(c.staging_files, 10);
        assert_eq!(c.staging_file_size, 160 * 1024 * 1024);
        assert_eq!(c.oplog_size, 128 * 1024 * 1024);
        assert_eq!(c.oplog_capacity(), 2 * 1024 * 1024); // "up to 2M operations"
    }

    #[test]
    fn mmap_size_is_clamped_to_supported_range() {
        let c = SplitConfig::new(Mode::Posix).with_mmap_size(1);
        assert_eq!(c.mmap_size, 2 * 1024 * 1024);
        let c = SplitConfig::new(Mode::Posix).with_mmap_size(u64::MAX);
        assert_eq!(c.mmap_size, 512 * 1024 * 1024);
    }

    #[test]
    fn daemon_defaults_and_builders() {
        let c = SplitConfig::new(Mode::Strict);
        assert!(c.daemon.enabled, "daemon is on by default");
        let c = SplitConfig::new(Mode::Strict).without_daemon();
        assert!(!c.daemon.enabled);
        let c = SplitConfig::new(Mode::Posix).with_staging_watermarks(2, 2);
        assert_eq!(c.daemon.staging_low_watermark, 2);
        assert!(
            c.daemon.staging_high_watermark > c.daemon.staging_low_watermark,
            "high watermark stays above low"
        );
    }

    #[test]
    fn staging_lanes_default_to_the_worker_count() {
        let c = SplitConfig::new(Mode::Strict);
        assert_eq!(c.staging_lanes, 0, "automatic by default");
        assert_eq!(c.effective_staging_lanes(), c.daemon.workers.max(1));
        let c = SplitConfig::new(Mode::Strict).with_staging_lanes(16);
        assert_eq!(c.effective_staging_lanes(), 16);
        assert!(c.daemon.adaptive_watermarks, "adaptive on by default");
        let c = c.without_adaptive_watermarks();
        assert!(!c.daemon.adaptive_watermarks);
    }

    #[test]
    fn tiering_knobs_clamp_and_compose() {
        let c = SplitConfig::new(Mode::Strict);
        assert!(c.daemon.tier_demote_after_ms > 0.0);
        assert!((0.0..=1.0).contains(&c.daemon.tier_pm_watermark));
        assert!(c.daemon.tier_bandwidth_per_tick >= 4096);
        assert!(c.daemon.tier_promote_after_reads >= 1);
        let c = SplitConfig::new(Mode::Strict)
            .with_tier_demote_after_ms(-3.0)
            .with_tier_pm_watermark(7.0)
            .with_tier_bandwidth_per_tick(1)
            .with_tier_promote_after_reads(0);
        assert_eq!(c.daemon.tier_demote_after_ms, 0.0);
        assert_eq!(c.daemon.tier_pm_watermark, 1.0);
        assert_eq!(c.daemon.tier_bandwidth_per_tick, 4096);
        assert_eq!(c.daemon.tier_promote_after_reads, 1);
    }

    #[test]
    fn ablation_switches_compose() {
        let c = SplitConfig::new(Mode::Posix).without_staging();
        assert!(!c.use_staging && !c.use_relink);
        let c = SplitConfig::new(Mode::Posix).without_relink();
        assert!(c.use_staging && !c.use_relink);
    }
}
