//! Tunable parameters of a SplitFS instance (paper §3.6).

use crate::modes::Mode;

/// Configuration of a U-Split instance.
///
/// The defaults follow the paper but are scaled down to fit the emulated
/// devices the test-suite and benchmark harness create (the paper's 160 MiB
/// staging files and 128 MiB operation log assume a multi-hundred-gigabyte
/// PM module).  [`SplitConfig::paper_defaults`] restores the exact paper
/// values for experiments run on large devices.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitConfig {
    /// Consistency mode of this instance.
    pub mode: Mode,
    /// Granularity of target-file memory mappings.  The paper supports
    /// 2 MiB – 512 MiB; 2 MiB is the default so huge pages can be used.
    pub mmap_size: u64,
    /// Number of staging files pre-allocated at startup.
    pub staging_files: usize,
    /// Size of each staging file in bytes.
    pub staging_file_size: u64,
    /// Size of the operation log in bytes (64 B per entry).
    pub oplog_size: u64,
    /// Ablation switch (Figure 3): route appends through staging files.
    /// With this off, appends fall through to the kernel file system.
    pub use_staging: bool,
    /// Ablation switch (Figure 3): use the relink ioctl on `fsync`.  With
    /// this off, staged appends are copied into the target file instead of
    /// being relinked.
    pub use_relink: bool,
    /// Pre-fault mappings when they are created (`MAP_POPULATE`).
    pub populate_mmaps: bool,
}

impl SplitConfig {
    /// Default configuration (scaled for the emulated devices) in the given
    /// mode.
    pub fn new(mode: Mode) -> Self {
        Self {
            mode,
            mmap_size: 2 * 1024 * 1024,
            staging_files: 4,
            staging_file_size: 16 * 1024 * 1024,
            oplog_size: 8 * 1024 * 1024,
            use_staging: true,
            use_relink: true,
            populate_mmaps: true,
        }
    }

    /// The exact parameter values reported in §3.6 of the paper: ten
    /// 160 MiB staging files and a 128 MiB operation log.
    pub fn paper_defaults(mode: Mode) -> Self {
        Self {
            mode,
            mmap_size: 2 * 1024 * 1024,
            staging_files: 10,
            staging_file_size: 160 * 1024 * 1024,
            oplog_size: 128 * 1024 * 1024,
            use_staging: true,
            use_relink: true,
            populate_mmaps: true,
        }
    }

    /// Sets the mmap granularity (clamped to the paper's 2 MiB – 512 MiB
    /// supported range).
    pub fn with_mmap_size(mut self, size: u64) -> Self {
        self.mmap_size = size.clamp(2 * 1024 * 1024, 512 * 1024 * 1024);
        self
    }

    /// Sets the staging pool shape.
    pub fn with_staging(mut self, files: usize, file_size: u64) -> Self {
        self.staging_files = files.max(1);
        self.staging_file_size = file_size.max(2 * 1024 * 1024);
        self
    }

    /// Sets the operation-log size (minimum one 4 KiB block, i.e. 64
    /// entries).
    pub fn with_oplog_size(mut self, size: u64) -> Self {
        self.oplog_size = size.max(4096);
        self
    }

    /// Disables staging (Figure 3 ablation: "split architecture only").
    pub fn without_staging(mut self) -> Self {
        self.use_staging = false;
        self.use_relink = false;
        self
    }

    /// Disables relink but keeps staging (Figure 3 ablation: staged appends
    /// are copied on `fsync` instead of relinked).
    pub fn without_relink(mut self) -> Self {
        self.use_relink = false;
        self
    }

    /// Maximum number of 64-byte entries the operation log can hold.
    pub fn oplog_capacity(&self) -> u64 {
        self.oplog_size / 64
    }
}

impl Default for SplitConfig {
    fn default() -> Self {
        Self::new(Mode::Posix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper_shape() {
        let c = SplitConfig::paper_defaults(Mode::Strict);
        assert_eq!(c.mmap_size, 2 * 1024 * 1024);
        assert_eq!(c.staging_files, 10);
        assert_eq!(c.staging_file_size, 160 * 1024 * 1024);
        assert_eq!(c.oplog_size, 128 * 1024 * 1024);
        assert_eq!(c.oplog_capacity(), 2 * 1024 * 1024); // "up to 2M operations"
    }

    #[test]
    fn mmap_size_is_clamped_to_supported_range() {
        let c = SplitConfig::new(Mode::Posix).with_mmap_size(1);
        assert_eq!(c.mmap_size, 2 * 1024 * 1024);
        let c = SplitConfig::new(Mode::Posix).with_mmap_size(u64::MAX);
        assert_eq!(c.mmap_size, 512 * 1024 * 1024);
    }

    #[test]
    fn ablation_switches_compose() {
        let c = SplitConfig::new(Mode::Posix).without_staging();
        assert!(!c.use_staging && !c.use_relink);
        let c = SplitConfig::new(Mode::Posix).without_relink();
        assert!(c.use_staging && !c.use_relink);
    }
}
