//! Per-file and per-descriptor bookkeeping kept in DRAM by U-Split.
//!
//! U-Split caches file attributes at `open` and keeps them after `close`
//! (§3.5), tracks which byte ranges are staged in staging files awaiting a
//! relink, and owns the collection of memory mappings for each file.
//! Descriptors are thin: they share a single per-open-file offset so that
//! `dup`-ed descriptors observe each other's seeks, as the paper requires.
//!
//! All of this state is **instance-private DRAM**: every [`SplitFs`]
//! instance has its own sharded registry and descriptor table, so
//! concurrent instances over one kernel file system share nothing here —
//! the only cross-instance coordination is the kernel lease on staging
//! and log resources ([`kernelfs::lease`]).
//!
//! [`SplitFs`]: crate::SplitFs

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use vfs::{Fd, FsError, FsResult, OpenFlags};

use crate::mmap_collection::MmapCollection;

/// A range of a target file whose data currently lives in a staging file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagedExtent {
    /// Offset within the target file where this data belongs.
    pub target_offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Inode of the staging file holding the bytes.
    pub staging_ino: u64,
    /// Kernel descriptor of the staging file.
    pub staging_fd: Fd,
    /// Offset of the bytes within the staging file.
    pub staging_offset: u64,
    /// Device offset of the bytes (staging files are pre-mapped).
    pub device_offset: u64,
    /// Operation-log sequence number (0 when the mode does not log).
    pub seq: u64,
}

/// Everything U-Split knows about one file, shared by all descriptors that
/// refer to it.
#[derive(Debug)]
pub struct FileState {
    /// Inode number in the kernel file system.
    pub ino: u64,
    /// Path the file was last opened under (kept for diagnostics).
    pub path: String,
    /// The kernel descriptor U-Split keeps open for metadata operations,
    /// DAX mapping and relink.
    pub kernel_fd: Fd,
    /// Whether `kernel_fd` was opened with write permission (relink and the
    /// kernel-fallback write path require a writable descriptor).
    pub kernel_fd_writable: bool,
    /// File size as the kernel file system knows it.
    pub kernel_size: u64,
    /// File size as the application sees it (kernel size plus staged
    /// appends).
    pub cached_size: u64,
    /// Staged-but-not-yet-relinked writes, in operation order.
    pub staged: Vec<StagedExtent>,
    /// Simulated time (ns) of the most recent staged write — the
    /// cold-file relink policy retires files whose staged data has sat
    /// unsynced past a threshold.
    pub last_staged_ns: f64,
    /// The collection of memory mappings serving reads and overwrites.
    pub mmaps: MmapCollection,
    /// Number of application descriptors currently open on this file.
    pub open_fds: u32,
    /// Whether the file's blocks currently live on the capacity tier
    /// (set by the demotion sweep, cleared on promotion).  While set,
    /// reads bypass the mmap path and bounce through the kernel, which
    /// reassembles the segments transparently.  The kernel is
    /// authoritative: a stale flag only costs the mmap fast path, never
    /// correctness.
    pub demoted: bool,
    /// Reads served from the capacity tier since demotion — the heat
    /// counter that triggers promotion back to PM.
    pub cold_reads: u32,
    /// Simulated time (ns) of the most recent read or write through this
    /// state — the idle clock the tier-demotion policy evaluates.
    pub last_access_ns: f64,
}

impl FileState {
    /// Creates the state for a freshly opened file.
    pub fn new(ino: u64, path: &str, kernel_fd: Fd, size: u64) -> Self {
        Self {
            ino,
            path: path.to_string(),
            kernel_fd,
            kernel_fd_writable: true,
            kernel_size: size,
            cached_size: size,
            staged: Vec::new(),
            last_staged_ns: 0.0,
            mmaps: MmapCollection::new(),
            open_fds: 0,
            demoted: false,
            cold_reads: 0,
            last_access_ns: 0.0,
        }
    }

    /// Total bytes currently staged for this file.
    pub fn staged_bytes(&self) -> u64 {
        self.staged.iter().map(|e| e.len).sum()
    }

    /// Drops staged extents whose target range lies entirely at or beyond
    /// `size` (used by truncate).
    pub fn drop_staged_beyond(&mut self, size: u64) {
        self.staged.retain(|e| e.target_offset < size);
        for e in &mut self.staged {
            if e.target_offset + e.len > size {
                e.len = size - e.target_offset;
            }
        }
        self.staged.retain(|e| e.len > 0);
    }
}

/// One application-visible file descriptor.
#[derive(Debug, Clone)]
pub struct Descriptor {
    /// Inode of the file the descriptor refers to.
    pub ino: u64,
    /// Flags the descriptor was opened with.
    pub flags: OpenFlags,
    /// Current offset, shared between `dup`-ed descriptors.
    pub offset: Arc<Mutex<u64>>,
    /// End of the previous read (sequential-vs-random classification).
    pub last_read_end: Arc<Mutex<u64>>,
}

/// The descriptor table of a U-Split instance.
#[derive(Debug, Default)]
pub struct FdTable {
    fds: HashMap<Fd, Descriptor>,
    next_fd: Fd,
}

impl FdTable {
    /// Creates an empty table.  Descriptors start at 3, like a process whose
    /// stdio is already occupied.
    pub fn new() -> Self {
        Self {
            fds: HashMap::new(),
            next_fd: 3,
        }
    }

    /// Registers a new descriptor for `ino`.
    pub fn insert(&mut self, ino: u64, flags: OpenFlags) -> Fd {
        let fd = self.next_fd;
        self.next_fd += 1;
        self.fds.insert(
            fd,
            Descriptor {
                ino,
                flags,
                offset: Arc::new(Mutex::new(0)),
                last_read_end: Arc::new(Mutex::new(u64::MAX)),
            },
        );
        fd
    }

    /// Duplicates a descriptor; the new descriptor shares the original's
    /// offset (POSIX `dup` semantics, §3.5).
    pub fn dup(&mut self, fd: Fd) -> FsResult<Fd> {
        let desc = self.fds.get(&fd).cloned().ok_or(FsError::BadFd)?;
        let new_fd = self.next_fd;
        self.next_fd += 1;
        self.fds.insert(new_fd, desc);
        Ok(new_fd)
    }

    /// Looks up a descriptor.
    pub fn get(&self, fd: Fd) -> FsResult<Descriptor> {
        self.fds.get(&fd).cloned().ok_or(FsError::BadFd)
    }

    /// Removes a descriptor, returning it.
    pub fn remove(&mut self, fd: Fd) -> FsResult<Descriptor> {
        self.fds.remove(&fd).ok_or(FsError::BadFd)
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }
}

/// The registry of per-file state, keyed by inode.
pub type FileRegistry = HashMap<u64, Arc<RwLock<FileState>>>;

/// Number of shards in the U-Split file registry and descriptor table.
pub const STATE_SHARDS: usize = 16;

/// The per-file state registry, sharded by inode so concurrent opens,
/// lookups and appends on distinct files never serialize on one registry
/// lock.  Contended shard acquisitions are counted in the device-wide
/// `shard_lock_waits` statistic when a stats handle is attached.
#[derive(Debug)]
pub struct ShardedRegistry {
    shards: Vec<RwLock<FileRegistry>>,
    device: Option<Arc<pmem::PmemDevice>>,
}

impl ShardedRegistry {
    /// Creates an empty registry; `device` (when given) receives
    /// shard-contention counts and per-thread wait charges.
    pub fn new(device: Option<Arc<pmem::PmemDevice>>) -> Self {
        Self {
            shards: (0..STATE_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            device,
        }
    }

    fn shard(&self, ino: u64) -> &RwLock<FileRegistry> {
        &self.shards[ino as usize % self.shards.len()]
    }

    fn read_shard<'a>(
        &self,
        shard: &'a RwLock<FileRegistry>,
    ) -> parking_lot::RwLockReadGuard<'a, FileRegistry> {
        match &self.device {
            Some(device) => device.lock_contended(|| shard.try_read(), || shard.read()),
            None => shard.read(),
        }
    }

    /// Looks up the state of `ino`.
    pub fn get(&self, ino: u64) -> Option<Arc<RwLock<FileState>>> {
        self.read_shard(self.shard(ino)).get(&ino).cloned()
    }

    /// Returns the state for `ino`, inserting a fresh one built by `make`
    /// when absent.  The boolean is `true` when this call created it.
    pub fn get_or_insert_with(
        &self,
        ino: u64,
        make: impl FnOnce() -> FileState,
    ) -> (Arc<RwLock<FileState>>, bool) {
        let shard = self.shard(ino);
        if let Some(state) = self.read_shard(shard).get(&ino) {
            return (Arc::clone(state), false);
        }
        let mut guard = match &self.device {
            Some(device) => device.lock_contended(|| shard.try_write(), || shard.write()),
            None => shard.write(),
        };
        match guard.entry(ino) {
            std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), false),
            std::collections::hash_map::Entry::Vacant(e) => {
                let state = Arc::new(RwLock::new(make()));
                e.insert(Arc::clone(&state));
                (state, true)
            }
        }
    }

    /// Removes and returns the state of `ino`.
    pub fn remove(&self, ino: u64) -> Option<Arc<RwLock<FileState>>> {
        self.shard(ino).write().remove(&ino)
    }

    /// Snapshot of every cached state (shard by shard; no global lock).
    pub fn snapshot(&self) -> Vec<Arc<RwLock<FileState>>> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(self.read_shard(shard).values().cloned());
        }
        out
    }

    /// Snapshot of every cached state with its inode key, so callers can
    /// identify an entry **without** taking its state lock (a sweep that
    /// already holds one state's write lock must not even read-lock it).
    pub fn snapshot_keyed(&self) -> Vec<(u64, Arc<RwLock<FileState>>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(
                self.read_shard(shard)
                    .iter()
                    .map(|(ino, state)| (*ino, Arc::clone(state))),
            );
        }
        out
    }

    /// Finds a cached state by path.
    pub fn find_by_path(&self, path: &str) -> Option<Arc<RwLock<FileState>>> {
        for shard in &self.shards {
            let guard = self.read_shard(shard);
            if let Some(state) = guard.values().find(|s| s.read().path == path) {
                return Some(Arc::clone(state));
            }
        }
        None
    }

    /// Number of cached files.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether no file state is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The descriptor table, sharded by descriptor number with a lock-free
/// descriptor allocator, so the per-operation descriptor lookup on the
/// append hot path never serializes on one table lock.
#[derive(Debug)]
pub struct ShardedFdTable {
    shards: Vec<RwLock<HashMap<Fd, Descriptor>>>,
    next_fd: std::sync::atomic::AtomicU64,
}

impl Default for ShardedFdTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedFdTable {
    /// Creates an empty table.  Descriptors start at 3, like a process
    /// whose stdio is already occupied.
    pub fn new() -> Self {
        Self {
            shards: (0..STATE_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            next_fd: std::sync::atomic::AtomicU64::new(3),
        }
    }

    fn shard(&self, fd: Fd) -> &RwLock<HashMap<Fd, Descriptor>> {
        &self.shards[fd as usize % self.shards.len()]
    }

    /// Registers a new descriptor for `ino`.
    pub fn insert(&self, ino: u64, flags: OpenFlags) -> Fd {
        let fd = self
            .next_fd
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.shard(fd).write().insert(
            fd,
            Descriptor {
                ino,
                flags,
                offset: Arc::new(Mutex::new(0)),
                last_read_end: Arc::new(Mutex::new(u64::MAX)),
            },
        );
        fd
    }

    /// Duplicates a descriptor; the new descriptor shares the original's
    /// offset (POSIX `dup` semantics, §3.5).
    pub fn dup(&self, fd: Fd) -> FsResult<Fd> {
        let desc = self.get(fd)?;
        let new_fd = self
            .next_fd
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.shard(new_fd).write().insert(new_fd, desc);
        Ok(new_fd)
    }

    /// Looks up a descriptor.
    pub fn get(&self, fd: Fd) -> FsResult<Descriptor> {
        self.shard(fd)
            .read()
            .get(&fd)
            .cloned()
            .ok_or(FsError::BadFd)
    }

    /// Removes a descriptor, returning it.
    pub fn remove(&self, fd: Fd) -> FsResult<Descriptor> {
        self.shard(fd).write().remove(&fd).ok_or(FsError::BadFd)
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dup_shares_the_offset() {
        let mut table = FdTable::new();
        let fd = table.insert(7, OpenFlags::read_write());
        let dup = table.dup(fd).unwrap();
        assert_ne!(fd, dup);
        *table.get(fd).unwrap().offset.lock() = 4096;
        assert_eq!(*table.get(dup).unwrap().offset.lock(), 4096);
    }

    #[test]
    fn remove_invalidates_only_that_descriptor() {
        let mut table = FdTable::new();
        let a = table.insert(1, OpenFlags::read_only());
        let b = table.insert(2, OpenFlags::read_only());
        table.remove(a).unwrap();
        assert!(table.get(a).is_err());
        assert!(table.get(b).is_ok());
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn staged_bytes_and_truncation() {
        let mut st = FileState::new(5, "/f", 10, 8192);
        st.staged.push(StagedExtent {
            target_offset: 8192,
            len: 4096,
            staging_ino: 70,
            staging_fd: 11,
            staging_offset: 0,
            device_offset: 0,
            seq: 1,
        });
        st.staged.push(StagedExtent {
            target_offset: 12288,
            len: 4096,
            staging_ino: 70,
            staging_fd: 11,
            staging_offset: 4096,
            device_offset: 4096,
            seq: 2,
        });
        assert_eq!(st.staged_bytes(), 8192);
        st.drop_staged_beyond(10_000);
        assert_eq!(st.staged.len(), 1);
        assert_eq!(st.staged[0].len, 10_000 - 8192);
    }
}
