//! Workload generators and drivers for the SplitFS evaluation.
//!
//! Each module corresponds to a workload family the paper uses:
//!
//! * [`ycsb`] — the YCSB core workloads A–F (zipfian / latest / uniform key
//!   distributions) driven against the LSM key-value store.
//! * [`tpcc`] — a TPC-C-like transaction mix (new-order, payment,
//!   order-status, delivery, stock-level) driven against the WAL database.
//! * [`io_patterns`] — the §5.6 microbenchmarks: sequential/random
//!   reads/writes and appends in 4 KiB units.
//! * [`varmail`] — the §5.4 Varmail-like single-file system-call latency
//!   microbenchmark behind Table 6.
//! * [`utilities`] — git/tar/rsync-like metadata-heavy utility workloads
//!   (§5.9).
//! * [`appbench`] — drivers that run the applications from the `apps` crate
//!   on any [`vfs::FileSystem`] and collect a [`RunResult`].
//! * [`walshard`] — the WAL-per-shard saturation workload: N threads, one
//!   write-ahead log each, measuring wall-clock scaling and lock
//!   contention of the file system's hot path.
//! * [`multiproc`] — the multi-instance ("multi-process") workload: N
//!   concurrent U-Split instances over one shared kernel file system,
//!   each with leased staging/log resources, measuring aggregate
//!   throughput and lease conflicts.
//! * [`latency`] — the closed-loop per-operation latency workload: a
//!   mixed append/read/overwrite/fsync stream whose per-op latency
//!   distributions are captured by an attached [`obs::Recorder`].
//! * [`openloop`] — the open-loop async-ring workload: each thread
//!   keeps a target number of appends in flight on an [`aio`]
//!   submission ring, sweeping the offered load to show fence
//!   amortization and measuring submit-to-harvest latency
//!   percentiles plus durability-epoch invariant violations.
//! * [`crashmix`] — the crash-point fuzzing workload: a seeded mixed op
//!   stream (appends, fsyncs, renames, unlinks, ring appends) that
//!   declares [`pmem::Promise`]s into the device ledger as each
//!   durability guarantee is handed out, driving the `chaos` crate's
//!   declared-durability oracle.
//! * [`metaload`] — the concurrent metadata scale-out workload behind
//!   `harness -- metadata`: N threads churn (create/append/fsync/unlink)
//!   and age files in disjoint deep directories, then repeatedly resolve
//!   the aged paths, measuring critical-path creates/sec and
//!   resolves/sec, the full-path cache hit rate, and namespace-shard
//!   lock waits.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod appbench;
pub mod crashmix;
pub mod io_patterns;
pub mod latency;
pub mod metaload;
pub mod multiproc;
pub mod openloop;
pub mod tpcc;
pub mod utilities;
pub mod varmail;
pub mod walshard;
pub mod ycsb;

use pmem::{StatsSnapshot, TimeCategory};

/// The outcome of running one workload on one file system.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// File-system configuration name (e.g. "SplitFS-strict").
    pub fs_name: String,
    /// Workload name (e.g. "YCSB-A run").
    pub workload: String,
    /// Number of application-level operations performed.
    pub ops: u64,
    /// Simulated nanoseconds the workload took.
    pub elapsed_ns: f64,
    /// Device/software statistics accumulated during the run.
    pub stats: StatsSnapshot,
}

impl RunResult {
    /// Builds a result from a stats delta and elapsed simulated time.
    pub fn new(
        fs_name: impl Into<String>,
        workload: impl Into<String>,
        ops: u64,
        elapsed_ns: f64,
        stats: StatsSnapshot,
    ) -> Self {
        Self {
            fs_name: fs_name.into(),
            workload: workload.into(),
            ops,
            elapsed_ns,
            stats,
        }
    }

    /// Throughput in thousands of operations per simulated second.
    pub fn kops_per_sec(&self) -> f64 {
        if self.elapsed_ns <= 0.0 {
            return 0.0;
        }
        self.ops as f64 / (self.elapsed_ns / 1e9) / 1e3
    }

    /// Mean simulated latency per operation in nanoseconds.
    pub fn ns_per_op(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        self.elapsed_ns / self.ops as f64
    }

    /// The paper's software overhead: total time minus user-data device
    /// time (§5.7).
    pub fn software_overhead_ns(&self) -> f64 {
        self.stats.software_overhead_ns()
    }

    /// Fraction of total time that is software overhead.
    pub fn software_overhead_fraction(&self) -> f64 {
        let total = self.stats.total_time_ns();
        if total <= 0.0 {
            return 0.0;
        }
        self.software_overhead_ns() / total
    }

    /// Total bytes written to the device during the run.
    pub fn bytes_written(&self) -> u64 {
        self.stats.total_bytes_written()
    }

    /// Bytes of application data written (user-data category).
    pub fn user_bytes_written(&self) -> u64 {
        self.stats.written(TimeCategory::UserData)
    }

    /// Write amplification relative to the user-data bytes.
    pub fn write_amplification(&self) -> Option<f64> {
        self.stats.write_amplification(self.user_bytes_written())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics_are_consistent() {
        let stats = StatsSnapshot {
            time_ns: [600.0, 100.0, 100.0, 100.0, 100.0],
            bytes_written: [4096, 0, 1024, 64, 0],
            ..StatsSnapshot::default()
        };
        let r = RunResult::new("fs", "wl", 1000, 1_000_000.0, stats);
        assert!((r.kops_per_sec() - 1000.0).abs() < 0.001);
        assert!((r.ns_per_op() - 1000.0).abs() < 1e-9);
        assert!((r.software_overhead_ns() - 400.0).abs() < 1e-9);
        assert!((r.software_overhead_fraction() - 0.4).abs() < 1e-9);
        assert_eq!(r.bytes_written(), 5184);
        assert!((r.write_amplification().unwrap() - 5184.0 / 4096.0).abs() < 1e-9);
    }

    #[test]
    fn zero_division_is_handled() {
        let r = RunResult::new("fs", "wl", 0, 0.0, StatsSnapshot::default());
        assert_eq!(r.kops_per_sec(), 0.0);
        assert_eq!(r.ns_per_op(), 0.0);
        assert_eq!(r.software_overhead_fraction(), 0.0);
    }
}
