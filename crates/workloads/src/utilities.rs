//! Metadata-heavy utility workloads (paper §5.9, Figure 6 right half).
//!
//! The paper evaluates git, tar and rsync — workloads dominated by file
//! creation, stat, rename and small writes, where SplitFS's extra
//! user-space bookkeeping is pure overhead.  These generators reproduce the
//! same operation mixes on a synthetic file tree:
//!
//! * [`git_like`] — "git add + commit": hash and copy many small source
//!   files into an object store, write an index, and move refs with renames.
//! * [`tar_like`] — pack a directory tree into one large archive file with
//!   sequential appends.
//! * [`rsync_like`] — mirror a tree into another directory: stat + create +
//!   copy + fsync per file.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vfs::{FileSystem, FsResult, OpenFlags};

use crate::RunResult;

/// Shape of the synthetic source tree.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Number of directories.
    pub dirs: usize,
    /// Files per directory.
    pub files_per_dir: usize,
    /// Mean file size in bytes.
    pub mean_file_size: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            dirs: 8,
            files_per_dir: 64,
            mean_file_size: 4096,
            seed: 11,
        }
    }
}

/// Creates the synthetic source tree under `root` (setup, not measured by
/// callers that reset stats afterwards).
pub fn build_tree(
    fs: &Arc<dyn FileSystem>,
    root: &str,
    config: &TreeConfig,
) -> FsResult<Vec<String>> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    if !fs.exists(root) {
        fs.mkdir(root)?;
    }
    let mut paths = Vec::new();
    for d in 0..config.dirs {
        let dir = format!("{root}/dir{d:03}");
        if !fs.exists(&dir) {
            fs.mkdir(&dir)?;
        }
        for f in 0..config.files_per_dir {
            let path = format!("{dir}/file{f:04}.c");
            let size = rng.random_range(config.mean_file_size / 2..config.mean_file_size * 2);
            let content: Vec<u8> = (0..size)
                .map(|i| ((i * 31 + f * 7 + d) % 251) as u8)
                .collect();
            fs.write_file(&path, &content)?;
            paths.push(path);
        }
    }
    Ok(paths)
}

fn measured<F>(fs: &Arc<dyn FileSystem>, workload: &str, ops: u64, body: F) -> FsResult<RunResult>
where
    F: FnOnce() -> FsResult<()>,
{
    let device = Arc::clone(fs.device());
    device.clock().reset();
    device.stats().reset();
    let start_stats = device.stats().snapshot();
    let start_ns = device.clock().now_ns_f64();
    body()?;
    let elapsed = device.clock().now_ns_f64() - start_ns;
    let stats = device.stats().snapshot().delta_since(&start_stats);
    Ok(RunResult::new(fs.name(), workload, ops, elapsed, stats))
}

/// "git add + commit" over the tree at `root`: every file is stat-ed, read,
/// and copied into an object store under a content-derived name; then an
/// index file and a ref file are written and atomically renamed into place.
pub fn git_like(fs: &Arc<dyn FileSystem>, root: &str, paths: &[String]) -> FsResult<RunResult> {
    let objects = format!("{root}/.git-objects");
    let fs2 = Arc::clone(fs);
    let paths = paths.to_vec();
    let root = root.to_string();
    let ops = paths.len() as u64;
    measured(fs, "git", ops, move || {
        if !fs2.exists(&objects) {
            fs2.mkdir(&objects)?;
        }
        let mut index = Vec::new();
        for (i, path) in paths.iter().enumerate() {
            let meta = fs2.stat(path)?;
            let data = fs2.read_file(path)?;
            // Content "hash": cheap but content-derived, so object names are
            // stable like git blob ids.
            let hash = vfs::util::checksum32(&data);
            let object_path = format!("{objects}/obj-{hash:08x}-{i}");
            fs2.write_file(&object_path, &data)?;
            index.extend_from_slice(format!("{path} {hash:08x} {}\n", meta.size).as_bytes());
        }
        // Write the index and commit ref via temp-file + rename, as git does.
        let index_tmp = format!("{root}/.git-index.tmp");
        fs2.write_file(&index_tmp, &index)?;
        fs2.rename(&index_tmp, &format!("{root}/.git-index"))?;
        let ref_tmp = format!("{root}/.git-ref.tmp");
        fs2.write_file(&ref_tmp, b"commit-0000001\n")?;
        fs2.rename(&ref_tmp, &format!("{root}/.git-HEAD"))?;
        Ok(())
    })
}

/// "tar" the tree at `root` into `archive`: read every file and append a
/// header + its contents to one growing archive, fsyncing at the end.
pub fn tar_like(fs: &Arc<dyn FileSystem>, paths: &[String], archive: &str) -> FsResult<RunResult> {
    let fs2 = Arc::clone(fs);
    let paths = paths.to_vec();
    let archive = archive.to_string();
    let ops = paths.len() as u64;
    measured(fs, "tar", ops, move || {
        let fd = fs2.open(&archive, OpenFlags::create_truncate())?;
        for path in &paths {
            let data = fs2.read_file(path)?;
            let mut header = vec![0u8; 512];
            let name = path.as_bytes();
            header[..name.len().min(100)].copy_from_slice(&name[..name.len().min(100)]);
            header[124..136].copy_from_slice(format!("{:012}", data.len()).as_bytes());
            fs2.append(fd, &header)?;
            fs2.append(fd, &data)?;
            // Pad to the 512-byte record size like tar.
            let pad = (512 - data.len() % 512) % 512;
            if pad > 0 {
                fs2.append(fd, &vec![0u8; pad])?;
            }
        }
        fs2.fsync(fd)?;
        fs2.close(fd)?;
        Ok(())
    })
}

/// "rsync" the tree at `src_root` into `dst_root`: stat source and (missing)
/// destination, create the destination file, copy the bytes and fsync it.
pub fn rsync_like(
    fs: &Arc<dyn FileSystem>,
    src_root: &str,
    paths: &[String],
    dst_root: &str,
) -> FsResult<RunResult> {
    let fs2 = Arc::clone(fs);
    let paths = paths.to_vec();
    let src_root = src_root.to_string();
    let dst_root = dst_root.to_string();
    let ops = paths.len() as u64;
    measured(fs, "rsync", ops, move || {
        if !fs2.exists(&dst_root) {
            fs2.mkdir(&dst_root)?;
        }
        for path in &paths {
            let rel = path.strip_prefix(src_root.as_str()).unwrap_or(path);
            let dst_path = format!("{dst_root}{rel}");
            // Ensure the destination directory exists.
            if let Ok((parent, _)) = vfs::path::split(&dst_path) {
                if !fs2.exists(&parent) {
                    fs2.mkdir(&parent)?;
                }
            }
            let _ = fs2.stat(path)?;
            let exists = fs2.exists(&dst_path);
            let data = fs2.read_file(path)?;
            if !exists {
                fs2.write_file(&dst_path, &data)?;
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelfs::Ext4Dax;
    use pmem::PmemBuilder;

    fn fs() -> Arc<dyn FileSystem> {
        let device = PmemBuilder::new(256 * 1024 * 1024)
            .track_persistence(false)
            .build();
        Ext4Dax::mkfs(device).unwrap() as Arc<dyn FileSystem>
    }

    fn tiny_tree() -> TreeConfig {
        TreeConfig {
            dirs: 2,
            files_per_dir: 8,
            mean_file_size: 1024,
            seed: 5,
        }
    }

    #[test]
    fn git_like_creates_objects_and_index() {
        let fs = fs();
        let paths = build_tree(&fs, "/src", &tiny_tree()).unwrap();
        let result = git_like(&fs, "/src", &paths).unwrap();
        assert_eq!(result.ops, 16);
        assert!(result.elapsed_ns > 0.0);
        assert!(fs.exists("/src/.git-index"));
        assert!(fs.exists("/src/.git-HEAD"));
        assert_eq!(fs.readdir("/src/.git-objects").unwrap().len(), 16);
    }

    #[test]
    fn tar_like_produces_one_archive_holding_everything() {
        let fs = fs();
        let paths = build_tree(&fs, "/src", &tiny_tree()).unwrap();
        let result = tar_like(&fs, &paths, "/archive.tar").unwrap();
        assert_eq!(result.ops, 16);
        let total_input: u64 = paths.iter().map(|p| fs.stat(p).unwrap().size).sum();
        let archive_size = fs.stat("/archive.tar").unwrap().size;
        assert!(archive_size >= total_input, "archive must contain all data");
    }

    #[test]
    fn rsync_like_mirrors_the_tree() {
        let fs = fs();
        let paths = build_tree(&fs, "/src", &tiny_tree()).unwrap();
        let result = rsync_like(&fs, "/src", &paths, "/dst").unwrap();
        assert_eq!(result.ops, 16);
        for path in &paths {
            let rel = path.strip_prefix("/src").unwrap();
            let copy = format!("/dst{rel}");
            assert_eq!(
                fs.read_file(&copy).unwrap(),
                fs.read_file(path).unwrap(),
                "mismatch for {copy}"
            );
        }
    }
}
