//! WAL-per-shard saturation workload.
//!
//! Models the write path of a sharded server (a log-structured store, a
//! message broker, a database with per-core commit logs): `threads`
//! worker threads each own one write-ahead log file and drive it at
//! saturation — append a record, group-commit with an `fsync` every
//! `fsync_every` records, repeat.  No thread ever touches another
//! thread's file, so a file system whose internal state is properly
//! sharded should scale throughput with the thread count, while a global
//! lock on the metadata/write path flattens the curve.
//!
//! Unlike the single-threaded microbenchmarks, the headline metric here
//! is **critical-path simulated throughput**: the global simulated clock
//! sums every thread's charges and cannot distinguish serialized from
//! parallel execution, so each worker instead measures its own simulated
//! time ([`pmem::SimClock::thread_time_ns`] — its charges plus the
//! simulated work others completed while it was blocked on a contended
//! lock), and the run's makespan is the maximum over the workers.  A
//! file system with one global lock serializes every charge onto every
//! waiter's critical path (throughput flat in the thread count); sharded
//! state keeps each worker's path at its own work (throughput ~linear).
//! Host wall-clock time is reported alongside, and the result carries the
//! contention counters (`staging_lock_waits`, `shard_lock_waits`,
//! `oplog_epoch_swaps`, `checkpoint_stalls`, ...) the `scaling`
//! experiment prints.  Runs at up to 16 threads in the harness; on a
//! SplitFS instance configured with one staging lane per writer
//! (`SplitConfig::with_staging_lanes`), `staging_lock_waits` stays ~zero
//! because disjoint writers bump disjoint staging cursors.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use pmem::{SimClock, StatsSnapshot};
use vfs::{FileSystem, FsError, FsResult, IoVec, OpenFlags};

/// Parameters of one saturation run.
#[derive(Debug, Clone)]
pub struct WalShardConfig {
    /// Number of worker threads; each owns one WAL file.
    pub threads: usize,
    /// Payload bytes per record (a 16-byte header is prepended).
    pub record_size: usize,
    /// Records each thread appends (fixed per-thread work, so perfect
    /// scaling keeps wall time flat as threads grow).
    pub records_per_shard: u64,
    /// Group-commit interval: `fsync` after this many records (0 = only
    /// at the end).
    pub fsync_every: u64,
    /// Directory holding the `wal-<t>.log` files.
    pub dir: String,
}

impl Default for WalShardConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            record_size: 1008,
            records_per_shard: 2048,
            fsync_every: 64,
            dir: "/wal".to_string(),
        }
    }
}

/// The outcome of one saturation run.
#[derive(Debug, Clone)]
pub struct WalShardResult {
    /// Worker threads used.
    pub threads: usize,
    /// Total records appended across all threads.
    pub ops: u64,
    /// Total payload bytes appended.
    pub bytes: u64,
    /// Host wall-clock nanoseconds for the measured phase.
    pub wall_ns: f64,
    /// Total simulated nanoseconds charged by all threads (the global
    /// clock delta — the serial cost of the work).
    pub elapsed_ns: f64,
    /// Critical-path simulated nanoseconds: the maximum over worker
    /// threads of (own charges + simulated waits on contended locks).
    /// This is the parallel makespan and the basis of the scaling metric.
    pub critical_ns: f64,
    /// Device statistics delta for the measured phase.
    pub stats: StatsSnapshot,
}

impl WalShardResult {
    /// Critical-path simulated throughput in kops/s — the scaling metric.
    pub fn kops_per_sec(&self) -> f64 {
        if self.critical_ns <= 0.0 {
            0.0
        } else {
            self.ops as f64 / self.critical_ns * 1e6
        }
    }

    /// Host wall-clock throughput in kops/s (informational; depends on
    /// the machine's real core count).
    pub fn kops_per_sec_wall(&self) -> f64 {
        if self.wall_ns <= 0.0 {
            0.0
        } else {
            self.ops as f64 / self.wall_ns * 1e6
        }
    }
}

fn record(thread: usize, index: u64, payload: usize) -> (Vec<u8>, Vec<u8>) {
    let mut header = vec![0u8; 16];
    header[0..8].copy_from_slice(&(thread as u64).to_le_bytes());
    header[8..16].copy_from_slice(&index.to_le_bytes());
    let body = vec![(thread as u8).wrapping_add(1); payload];
    (header, body)
}

/// Runs the saturation workload: `threads` appender threads, each with a
/// private WAL file, all driven flat out.  Returns wall-clock and
/// simulated timings plus the contention counters.
pub fn run(fs: &Arc<dyn FileSystem>, config: &WalShardConfig) -> FsResult<WalShardResult> {
    if config.threads == 0 || config.records_per_shard == 0 {
        return Err(FsError::InvalidArgument);
    }
    let device = Arc::clone(fs.device());
    if !fs.exists(&config.dir) {
        fs.mkdir(&config.dir)?;
    }
    // Open (create) every file up front so the measured phase is pure
    // append/fsync.
    let fds: Vec<_> = (0..config.threads)
        .map(|t| fs.open(&format!("{}/wal-{t}.log", config.dir), OpenFlags::create()))
        .collect::<FsResult<_>>()?;

    let before = device.stats().snapshot();
    let start_sim = device.clock().now_ns_f64();
    let start_wall = Instant::now();
    let thread_times: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(config.threads));
    std::thread::scope(|scope| {
        for (t, &fd) in fds.iter().enumerate() {
            let fs = Arc::clone(fs);
            let config = config.clone();
            let thread_times = &thread_times;
            scope.spawn(move || {
                let t0 = SimClock::thread_time_ns();
                for i in 0..config.records_per_shard {
                    let (header, body) = record(t, i, config.record_size);
                    let iov = [IoVec::new(&header), IoVec::new(&body)];
                    fs.appendv(fd, &iov).expect("walshard append");
                    if config.fsync_every > 0 && (i + 1) % config.fsync_every == 0 {
                        fs.fsync(fd).expect("walshard fsync");
                    }
                }
                fs.fsync(fd).expect("walshard final fsync");
                thread_times.lock().push(SimClock::thread_time_ns() - t0);
            });
        }
    });
    let wall_ns = start_wall.elapsed().as_nanos() as f64;
    let elapsed_ns = device.clock().now_ns_f64() - start_sim;
    let critical_ns = thread_times.lock().iter().cloned().fold(0.0f64, f64::max);
    let stats = device.stats().snapshot().delta_since(&before);
    for fd in fds {
        fs.close(fd)?;
    }
    let ops = config.threads as u64 * config.records_per_shard;
    Ok(WalShardResult {
        threads: config.threads,
        ops,
        bytes: ops * config.record_size as u64,
        wall_ns,
        elapsed_ns,
        critical_ns,
        stats,
    })
}

/// Verifies every shard's WAL after a run (or after crash recovery):
/// each file must hold exactly `records_per_shard` records, in order,
/// with intact headers and untorn payloads.
pub fn verify(fs: &Arc<dyn FileSystem>, config: &WalShardConfig) -> FsResult<()> {
    let record_len = 16 + config.record_size;
    for t in 0..config.threads {
        let path = format!("{}/wal-{t}.log", config.dir);
        let data = fs.read_file(&path)?;
        if data.len() != record_len * config.records_per_shard as usize {
            return Err(FsError::Io(format!(
                "{path}: {} bytes, expected {}",
                data.len(),
                record_len * config.records_per_shard as usize
            )));
        }
        for (i, rec) in data.chunks(record_len).enumerate() {
            let thread = u64::from_le_bytes(rec[0..8].try_into().unwrap());
            let index = u64::from_le_bytes(rec[8..16].try_into().unwrap());
            if thread != t as u64 || index != i as u64 {
                return Err(FsError::Io(format!(
                    "{path}: record {i} carries header ({thread}, {index})"
                )));
            }
            let fill = (t as u8).wrapping_add(1);
            if rec[16..].iter().any(|&b| b != fill) {
                return Err(FsError::Io(format!("{path}: record {i} payload torn")));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict_splitfs() -> Arc<dyn FileSystem> {
        let device = pmem::PmemBuilder::new(256 * 1024 * 1024)
            .track_persistence(false)
            .build();
        let kernel = kernelfs::Ext4Dax::mkfs(device).unwrap();
        let config = splitfs::SplitConfig::new(splitfs::Mode::Strict)
            .with_staging(4, 8 * 1024 * 1024)
            .with_oplog_size(512 * 1024);
        splitfs::SplitFs::new(kernel, config).unwrap()
    }

    #[test]
    fn walshard_preserves_per_file_integrity_under_concurrency() {
        let fs = strict_splitfs();
        let config = WalShardConfig {
            threads: 4,
            records_per_shard: 256,
            record_size: 240,
            fsync_every: 32,
            ..WalShardConfig::default()
        };
        let result = run(&fs, &config).unwrap();
        assert_eq!(result.ops, 4 * 256);
        assert!(result.wall_ns > 0.0);
        assert!(result.critical_ns > 0.0);
        // Distinct files on sharded state: the parallel makespan must be
        // well below the serial total.
        assert!(result.critical_ns < result.elapsed_ns);
        verify(&fs, &config).unwrap();
        // Saturation at four writers must not stall the foreground on log
        // truncation: epoch swaps or growth only.
        assert_eq!(result.stats.checkpoint_stalls, 0);
    }

    #[test]
    fn walshard_with_lane_per_writer_never_contends_on_staging() {
        // One staging lane per writer thread and no background pushes
        // (daemon off): eight disjoint-file appenders must take staging
        // space without a single contended lane acquisition.
        let device = pmem::PmemBuilder::new(512 * 1024 * 1024)
            .track_persistence(false)
            .build();
        let kernel = kernelfs::Ext4Dax::mkfs(device).unwrap();
        let config = splitfs::SplitConfig::new(splitfs::Mode::Strict)
            .with_staging(8, 8 * 1024 * 1024)
            .with_staging_lanes(8)
            .with_oplog_size(512 * 1024)
            .without_daemon();
        let fs: Arc<dyn FileSystem> = splitfs::SplitFs::new(kernel, config).unwrap();
        let config = WalShardConfig {
            threads: 8,
            records_per_shard: 192,
            record_size: 496,
            fsync_every: 32,
            ..WalShardConfig::default()
        };
        let result = run(&fs, &config).unwrap();
        verify(&fs, &config).unwrap();
        assert_eq!(
            result.stats.staging_lock_waits, 0,
            "disjoint writers on disjoint lanes must never contend: {:?}",
            result.stats
        );
        assert_eq!(result.stats.staging_lane_steals, 0, "no lane ran dry");
        assert_eq!(result.stats.checkpoint_stalls, 0);
    }

    #[test]
    fn walshard_rejects_empty_configs() {
        let fs = strict_splitfs();
        let config = WalShardConfig {
            threads: 0,
            ..WalShardConfig::default()
        };
        assert!(run(&fs, &config).is_err());
    }
}
