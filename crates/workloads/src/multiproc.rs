//! Multi-instance (multi-"process") U-Split saturation workload.
//!
//! The paper's deployment model runs one U-Split instance per application
//! process, all over one shared kernel file system.  This workload models
//! that: `instances` concurrent [`SplitFs`] instances are mounted on a
//! **single** [`Ext4Dax`], each instance leases its own staging-pool
//! slice and operation-log range from the kernel, and each drives
//! `threads_per_instance` writer threads — one private WAL file per
//! thread — at saturation.
//!
//! The headline metric is **aggregate critical-path throughput**: as in
//! [`crate::walshard`], each worker measures its own simulated time
//! ([`pmem::SimClock::thread_time_ns`]), and the run's makespan is the
//! maximum over all workers of all instances.  Because every instance has
//! a private operation log, staging pool, registry and daemon, adding
//! instances must scale aggregate throughput the same way adding threads
//! to one instance does — with **zero lease conflicts** (the leases are
//! handed out once, at mount) and zero cross-instance interference beyond
//! the sharded kernel itself.
//!
//! [`verify`] checks every instance's files afterwards through a fresh
//! kernel-side read, so cross-instance contamination (one instance's
//! bytes in another's file) fails the run.

use std::sync::Arc;
use std::time::Instant;

use kernelfs::Ext4Dax;
use parking_lot::Mutex;
use pmem::{SimClock, StatsSnapshot};
use splitfs::{SplitConfig, SplitFs};
use vfs::{FileSystem, FsError, FsResult, IoVec, OpenFlags};

/// Parameters of one multi-instance saturation run.
#[derive(Debug, Clone)]
pub struct MultiProcConfig {
    /// Number of concurrent U-Split instances over the shared kernel.
    pub instances: usize,
    /// Writer threads per instance; each owns one WAL file.
    pub threads_per_instance: usize,
    /// Payload bytes per record (a 16-byte header is prepended).
    pub record_size: usize,
    /// Records each thread appends (fixed per-thread work, so perfect
    /// scaling keeps the makespan flat as instances grow).
    pub records_per_thread: u64,
    /// Group-commit interval: `fsync` after this many records (0 = only
    /// at the end).
    pub fsync_every: u64,
}

impl Default for MultiProcConfig {
    fn default() -> Self {
        Self {
            instances: 2,
            threads_per_instance: 1,
            record_size: 1008,
            records_per_thread: 2048,
            fsync_every: 64,
        }
    }
}

/// The outcome of one multi-instance run.
#[derive(Debug, Clone)]
pub struct MultiProcResult {
    /// Instances mounted.
    pub instances: usize,
    /// Total records appended across every instance and thread.
    pub ops: u64,
    /// Total payload bytes appended.
    pub bytes: u64,
    /// Host wall-clock nanoseconds for the measured phase.
    pub wall_ns: f64,
    /// Total simulated nanoseconds charged by all threads (the serial
    /// cost of the work).
    pub elapsed_ns: f64,
    /// Aggregate makespan: the maximum over every worker thread of its
    /// own simulated critical path.
    pub critical_ns: f64,
    /// Device statistics delta for the measured phase (includes the lease
    /// counters: conflicts must be zero).
    pub stats: StatsSnapshot,
    /// The instance ids the kernel leased out, in mount order.
    pub instance_ids: Vec<u32>,
}

impl MultiProcResult {
    /// Aggregate critical-path simulated throughput in kops/s.
    pub fn kops_per_sec(&self) -> f64 {
        if self.critical_ns <= 0.0 {
            0.0
        } else {
            self.ops as f64 / self.critical_ns * 1e6
        }
    }

    /// Host wall-clock throughput in kops/s (informational).
    pub fn kops_per_sec_wall(&self) -> f64 {
        if self.wall_ns <= 0.0 {
            0.0
        } else {
            self.ops as f64 / self.wall_ns * 1e6
        }
    }
}

/// Path of instance `i`'s thread-`t` WAL file.
fn wal_path(instance: usize, thread: usize) -> String {
    format!("/proc-{instance}/wal-{thread}.log")
}

fn record(instance: usize, thread: usize, index: u64, payload: usize) -> (Vec<u8>, Vec<u8>) {
    let mut header = vec![0u8; 16];
    header[0..8].copy_from_slice(&((instance as u64) << 32 | thread as u64).to_le_bytes());
    header[8..16].copy_from_slice(&index.to_le_bytes());
    let body = vec![fill_byte(instance, thread); payload];
    (header, body)
}

/// Per-(instance, thread) payload fill byte; distinct values make
/// cross-instance contamination detectable byte by byte.
fn fill_byte(instance: usize, thread: usize) -> u8 {
    (instance as u8)
        .wrapping_mul(31)
        .wrapping_add(thread as u8)
        .wrapping_add(1)
}

/// Runs the workload: mounts `config.instances` U-Split instances over
/// `kernel` (each with `split_config`), drives every instance's writer
/// threads flat out, verifies per-file integrity, and unmounts.  Returns
/// aggregate timings plus the lease/contention counters.
pub fn run(
    kernel: &Arc<Ext4Dax>,
    split_config: &SplitConfig,
    config: &MultiProcConfig,
) -> FsResult<MultiProcResult> {
    if config.instances == 0 || config.threads_per_instance == 0 || config.records_per_thread == 0 {
        return Err(FsError::InvalidArgument);
    }
    let device = Arc::clone(kernel.device());

    // The measured phase starts before the mounts: lease acquisition is
    // part of the multi-instance story and the lease counters must appear
    // in the reported delta.  Throughput is computed from the workers'
    // critical paths only, so mount cost does not distort it.
    let before = device.stats().snapshot();
    let start_sim = device.clock().now_ns_f64();
    let start_wall = Instant::now();

    // Mount every instance and open every WAL up front so the append loop
    // below is pure append/fsync.
    let mut instances: Vec<Arc<SplitFs>> = Vec::with_capacity(config.instances);
    let mut fds: Vec<Vec<vfs::Fd>> = Vec::with_capacity(config.instances);
    for i in 0..config.instances {
        let fs = SplitFs::new(Arc::clone(kernel), split_config.clone())?;
        fs.mkdir(&format!("/proc-{i}"))?;
        let mut inst_fds = Vec::with_capacity(config.threads_per_instance);
        for t in 0..config.threads_per_instance {
            inst_fds.push(fs.open(&wal_path(i, t), OpenFlags::create())?);
        }
        instances.push(fs);
        fds.push(inst_fds);
    }
    let instance_ids: Vec<u32> = instances.iter().map(|fs| fs.instance_id()).collect();

    let thread_times: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (i, fs) in instances.iter().enumerate() {
            for (t, &fd) in fds[i].iter().enumerate() {
                let fs = Arc::clone(fs);
                let config = config.clone();
                let thread_times = &thread_times;
                scope.spawn(move || {
                    let t0 = SimClock::thread_time_ns();
                    for idx in 0..config.records_per_thread {
                        let (header, body) = record(i, t, idx, config.record_size);
                        let iov = [IoVec::new(&header), IoVec::new(&body)];
                        fs.appendv(fd, &iov).expect("multiproc append");
                        if config.fsync_every > 0 && (idx + 1) % config.fsync_every == 0 {
                            fs.fsync(fd).expect("multiproc fsync");
                        }
                    }
                    fs.fsync(fd).expect("multiproc final fsync");
                    thread_times.lock().push(SimClock::thread_time_ns() - t0);
                });
            }
        }
    });
    let wall_ns = start_wall.elapsed().as_nanos() as f64;
    let elapsed_ns = device.clock().now_ns_f64() - start_sim;
    let critical_ns = thread_times.lock().iter().cloned().fold(0.0f64, f64::max);

    for (i, fs) in instances.iter().enumerate() {
        for &fd in &fds[i] {
            fs.close(fd)?;
        }
    }
    // Clean unmount: leases released.  The stats delta closes over it so
    // the lease-release counters balance the acquires.
    drop(instances);
    let stats = device.stats().snapshot().delta_since(&before);

    // Integrity is part of the run's contract: a contaminated file must
    // fail the run, not report healthy throughput.
    verify(kernel, config)?;

    let ops = (config.instances * config.threads_per_instance) as u64 * config.records_per_thread;
    Ok(MultiProcResult {
        instances: config.instances,
        ops,
        bytes: ops * config.record_size as u64,
        wall_ns,
        elapsed_ns,
        critical_ns,
        stats,
        instance_ids,
    })
}

/// Verifies every instance's WALs through the kernel file system: each
/// file must hold exactly `records_per_thread` records, in order, with
/// intact headers and payloads carrying the owner's fill byte — a foreign
/// fill byte means one instance's data bled into another's file.
pub fn verify(kernel: &Arc<Ext4Dax>, config: &MultiProcConfig) -> FsResult<()> {
    let record_len = 16 + config.record_size;
    for i in 0..config.instances {
        for t in 0..config.threads_per_instance {
            let path = wal_path(i, t);
            let data = kernel.read_file(&path)?;
            if data.len() != record_len * config.records_per_thread as usize {
                return Err(FsError::Io(format!(
                    "{path}: {} bytes, expected {}",
                    data.len(),
                    record_len * config.records_per_thread as usize
                )));
            }
            let want_owner = (i as u64) << 32 | t as u64;
            let fill = fill_byte(i, t);
            for (idx, rec) in data.chunks(record_len).enumerate() {
                let owner = u64::from_le_bytes(rec[0..8].try_into().unwrap());
                let index = u64::from_le_bytes(rec[8..16].try_into().unwrap());
                if owner != want_owner || index != idx as u64 {
                    return Err(FsError::Io(format!(
                        "{path}: record {idx} carries header ({owner:#x}, {index})"
                    )));
                }
                if rec[16..].iter().any(|&b| b != fill) {
                    return Err(FsError::Io(format!(
                        "{path}: record {idx} torn or cross-contaminated"
                    )));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitfs::Mode;

    fn kernel() -> Arc<Ext4Dax> {
        let device = pmem::PmemBuilder::new(512 * 1024 * 1024)
            .track_persistence(false)
            .build();
        Ext4Dax::mkfs(device).unwrap()
    }

    fn strict_config() -> SplitConfig {
        SplitConfig::new(Mode::Strict)
            .with_staging(4, 8 * 1024 * 1024)
            .with_oplog_size(512 * 1024)
    }

    #[test]
    fn two_instances_share_one_kernel_without_conflicts() {
        let kernel = kernel();
        let config = MultiProcConfig {
            instances: 2,
            threads_per_instance: 2,
            records_per_thread: 256,
            record_size: 240,
            fsync_every: 32,
        };
        let result = run(&kernel, &strict_config(), &config).unwrap();
        assert_eq!(result.ops, 2 * 2 * 256);
        assert_eq!(result.instance_ids, vec![0, 1]);
        assert_eq!(
            result.stats.lease_conflicts, 0,
            "leases are handed out once, never contended: {:?}",
            result.stats
        );
        assert_eq!(result.stats.lease_acquires, 2);
        // Private logs and pools: the parallel makespan beats the serial
        // total.
        assert!(result.critical_ns < result.elapsed_ns);
        assert_eq!(result.stats.checkpoint_stalls, 0);
        verify(&kernel, &config).unwrap();
        // Clean unmounts released every lease.
        assert_eq!(kernel.lease_active_count(), 0);
    }

    #[test]
    fn multiproc_rejects_empty_configs() {
        let kernel = kernel();
        let config = MultiProcConfig {
            instances: 0,
            ..MultiProcConfig::default()
        };
        assert!(run(&kernel, &strict_config(), &config).is_err());
    }
}
