//! TPC-C-like transaction workload.
//!
//! The paper measures SQLite (WAL mode) running TPC-C.  This module
//! generates the standard TPC-C transaction mix — new-order 45%, payment
//! 43%, order-status 4%, delivery 4%, stock-level 4% — against the
//! [`apps::waldb::WalDb`] page store, with the warehouse/district/customer/
//! item/stock/order tables scaled down so the harness can run in seconds
//! while producing the same read/overwrite/commit file-system pattern.

use std::sync::Arc;

use apps::waldb::{WalDb, WalDbConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vfs::{FileSystem, FsResult};

/// Table identifiers in the page store.
mod table {
    pub const WAREHOUSE: u8 = 1;
    pub const DISTRICT: u8 = 2;
    pub const CUSTOMER: u8 = 3;
    pub const ORDERS: u8 = 4;
    pub const ORDER_LINE: u8 = 5;
    pub const ITEM: u8 = 6;
    pub const STOCK: u8 = 7;
    pub const HISTORY: u8 = 9;
}

/// Scale parameters (reduced from the TPC-C specification so a run finishes
/// quickly; the transaction logic and table structure are unchanged).
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// Number of warehouses.
    pub warehouses: u64,
    /// Districts per warehouse (spec: 10).
    pub districts_per_warehouse: u64,
    /// Customers per district (spec: 3000).
    pub customers_per_district: u64,
    /// Number of items (spec: 100 000).
    pub items: u64,
    /// WAL database configuration.
    pub db: WalDbConfig,
    /// Random seed.
    pub seed: u64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        Self {
            warehouses: 1,
            districts_per_warehouse: 10,
            customers_per_district: 120,
            items: 1000,
            db: WalDbConfig::default(),
            seed: 42,
        }
    }
}

/// Counts of each transaction type executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TpccCounts {
    /// New-order transactions.
    pub new_order: u64,
    /// Payment transactions.
    pub payment: u64,
    /// Order-status transactions.
    pub order_status: u64,
    /// Delivery transactions.
    pub delivery: u64,
    /// Stock-level transactions.
    pub stock_level: u64,
}

impl TpccCounts {
    /// Total transactions.
    pub fn total(&self) -> u64 {
        self.new_order + self.payment + self.order_status + self.delivery + self.stock_level
    }
}

/// The TPC-C driver.
pub struct TpccDriver {
    db: WalDb,
    config: TpccConfig,
    rng: StdRng,
    next_order_id: u64,
    counts: TpccCounts,
}

impl std::fmt::Debug for TpccDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TpccDriver")
            .field("counts", &self.counts)
            .finish()
    }
}

fn row(tag: &str, len: usize) -> Vec<u8> {
    let mut v = tag.as_bytes().to_vec();
    v.resize(len, b'x');
    v
}

impl TpccDriver {
    /// Creates the database on `fs` and loads the initial table population.
    pub fn setup(fs: Arc<dyn FileSystem>, config: TpccConfig) -> FsResult<Self> {
        let mut db = WalDb::open(fs, config.db.clone())?;
        let mut rng = StdRng::seed_from_u64(config.seed);

        for w in 0..config.warehouses {
            db.upsert(table::WAREHOUSE, w, &row("warehouse", 90))?;
            for d in 0..config.districts_per_warehouse {
                let d_key = w * 100 + d;
                db.upsert(table::DISTRICT, d_key, &row("district", 95))?;
                for c in 0..config.customers_per_district {
                    let c_key = d_key * 10_000 + c;
                    db.upsert(table::CUSTOMER, c_key, &row("customer", 250))?;
                }
            }
            db.commit()?;
        }
        for i in 0..config.items {
            db.upsert(table::ITEM, i, &row("item", 82))?;
            for w in 0..config.warehouses {
                db.upsert(table::STOCK, w * 1_000_000 + i, &row("stock", 120))?;
            }
            if i % 200 == 199 {
                db.commit()?;
            }
        }
        db.commit()?;
        let _ = &mut rng;
        let run_rng = StdRng::seed_from_u64(config.seed ^ 0xDEAD);
        Ok(Self {
            db,
            config,
            rng: run_rng,
            next_order_id: 1,
            counts: TpccCounts::default(),
        })
    }

    /// The counts of each transaction type run so far.
    pub fn counts(&self) -> TpccCounts {
        self.counts
    }

    /// Access to the underlying database (for assertions in tests).
    pub fn db(&self) -> &WalDb {
        &self.db
    }

    fn random_customer(&mut self) -> u64 {
        let w = self.rng.random_range(0..self.config.warehouses);
        let d = self
            .rng
            .random_range(0..self.config.districts_per_warehouse);
        let c = self.rng.random_range(0..self.config.customers_per_district);
        (w * 100 + d) * 10_000 + c
    }

    fn random_district(&mut self) -> u64 {
        let w = self.rng.random_range(0..self.config.warehouses);
        let d = self
            .rng
            .random_range(0..self.config.districts_per_warehouse);
        w * 100 + d
    }

    /// Runs one transaction chosen from the standard mix.
    pub fn run_transaction(&mut self) -> FsResult<()> {
        let r: f64 = self.rng.random();
        if r < 0.45 {
            self.new_order()
        } else if r < 0.88 {
            self.payment()
        } else if r < 0.92 {
            self.order_status()
        } else if r < 0.96 {
            self.delivery()
        } else {
            self.stock_level()
        }
    }

    /// Runs `n` transactions.
    pub fn run(&mut self, n: u64) -> FsResult<TpccCounts> {
        for _ in 0..n {
            self.run_transaction()?;
        }
        Ok(self.counts)
    }

    fn new_order(&mut self) -> FsResult<()> {
        let district = self.random_district();
        let customer = self.random_customer();
        // Read warehouse, district, customer.
        self.db.get(table::WAREHOUSE, district / 100)?;
        self.db.get(table::DISTRICT, district)?;
        self.db.get(table::CUSTOMER, customer)?;
        // Update the district (next order id) and insert the order.
        self.db
            .upsert(table::DISTRICT, district, &row("district'", 95))?;
        let order_id = self.next_order_id;
        self.next_order_id += 1;
        self.db.upsert(table::ORDERS, order_id, &row("order", 70))?;
        // 5–15 order lines, each reading an item and updating its stock.
        let lines = self.rng.random_range(5..=15);
        for line in 0..lines {
            let item = self.rng.random_range(0..self.config.items);
            self.db.get(table::ITEM, item)?;
            let stock_key = (district / 100) * 1_000_000 + item;
            self.db.get(table::STOCK, stock_key)?;
            self.db
                .upsert(table::STOCK, stock_key, &row("stock'", 120))?;
            self.db.upsert(
                table::ORDER_LINE,
                order_id * 100 + line,
                &row("orderline", 54),
            )?;
        }
        self.db.commit()?;
        self.counts.new_order += 1;
        Ok(())
    }

    fn payment(&mut self) -> FsResult<()> {
        let district = self.random_district();
        let customer = self.random_customer();
        self.db.get(table::WAREHOUSE, district / 100)?;
        self.db.get(table::DISTRICT, district)?;
        self.db.get(table::CUSTOMER, customer)?;
        self.db
            .upsert(table::WAREHOUSE, district / 100, &row("warehouse'", 90))?;
        self.db
            .upsert(table::DISTRICT, district, &row("district'", 95))?;
        self.db
            .upsert(table::CUSTOMER, customer, &row("customer'", 250))?;
        let hist_key = self.counts.payment * 7 + district;
        self.db
            .upsert(table::HISTORY, hist_key, &row("history", 46))?;
        self.db.commit()?;
        self.counts.payment += 1;
        Ok(())
    }

    fn order_status(&mut self) -> FsResult<()> {
        let customer = self.random_customer();
        self.db.get(table::CUSTOMER, customer)?;
        if self.next_order_id > 1 {
            let order = self.rng.random_range(1..self.next_order_id);
            self.db.get(table::ORDERS, order)?;
            for line in 0..5 {
                self.db.get(table::ORDER_LINE, order * 100 + line)?;
            }
        }
        self.db.commit()?;
        self.counts.order_status += 1;
        Ok(())
    }

    fn delivery(&mut self) -> FsResult<()> {
        // Deliver up to 10 oldest orders: read + update each.
        let start = self.counts.delivery * 10 + 1;
        for order in start..start + 10 {
            if order >= self.next_order_id {
                break;
            }
            self.db.get(table::ORDERS, order)?;
            self.db
                .upsert(table::ORDERS, order, &row("order-delivered", 70))?;
        }
        self.db.commit()?;
        self.counts.delivery += 1;
        Ok(())
    }

    fn stock_level(&mut self) -> FsResult<()> {
        let district = self.random_district();
        self.db.get(table::DISTRICT, district)?;
        for _ in 0..20 {
            let item = self.rng.random_range(0..self.config.items);
            self.db
                .get(table::STOCK, (district / 100) * 1_000_000 + item)?;
        }
        self.db.commit()?;
        self.counts.stock_level += 1;
        Ok(())
    }

    /// Flushes and closes the database.
    pub fn shutdown(&mut self) -> FsResult<()> {
        self.db.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelfs::Ext4Dax;
    use pmem::PmemBuilder;

    fn fs() -> Arc<dyn FileSystem> {
        let device = PmemBuilder::new(256 * 1024 * 1024)
            .track_persistence(false)
            .build();
        Ext4Dax::mkfs(device).unwrap() as Arc<dyn FileSystem>
    }

    fn tiny_config() -> TpccConfig {
        TpccConfig {
            warehouses: 1,
            districts_per_warehouse: 2,
            customers_per_district: 20,
            items: 100,
            ..TpccConfig::default()
        }
    }

    #[test]
    fn setup_populates_all_tables() {
        let driver = TpccDriver::setup(fs(), tiny_config()).unwrap();
        // warehouses + districts + customers + items + stock
        let expected_rows = 1 + 2 + 2 * 20 + 100 + 100;
        assert_eq!(driver.db().row_count() as u64, expected_rows);
    }

    #[test]
    fn transaction_mix_roughly_matches_spec() {
        let mut driver = TpccDriver::setup(fs(), tiny_config()).unwrap();
        let counts = driver.run(500).unwrap();
        assert_eq!(counts.total(), 500);
        let no_frac = counts.new_order as f64 / 500.0;
        let pay_frac = counts.payment as f64 / 500.0;
        assert!((no_frac - 0.45).abs() < 0.1, "new-order fraction {no_frac}");
        assert!((pay_frac - 0.43).abs() < 0.1, "payment fraction {pay_frac}");
        assert!(counts.order_status + counts.delivery + counts.stock_level > 0);
    }

    #[test]
    fn transactions_commit_durably() {
        let mut driver = TpccDriver::setup(fs(), tiny_config()).unwrap();
        let before = driver.db().commit_count();
        driver.run(50).unwrap();
        assert!(driver.db().commit_count() >= before + 50);
        driver.shutdown().unwrap();
    }
}
