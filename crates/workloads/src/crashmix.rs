//! The crash-point fuzzing workload: a deterministic mixed op stream
//! that **declares durability promises** as it runs.
//!
//! `crashmix` is the driver half of the declared-durability oracle
//! (`crates/chaos`).  Worker threads churn disjoint file sets with a
//! seeded mix of appends, creates, fsyncs, batched fsyncs, renames,
//! unlinks and read-backs, and after every operation whose return
//! conveys a durability guarantee they record a [`pmem::Promise`] in the
//! device's [`pmem::PromiseLedger`].  A crash image captured at any
//! fence boundary then carries the exact set of promises the
//! application had been handed before that boundary, and the oracle
//! checks the recovered file system against them.
//!
//! The declaration discipline that keeps the oracle sound:
//!
//! * **Durability promises are declared *after* the guaranteeing call
//!   returns** (`fsync`, `await_epoch`, a journaled metadata op).  The
//!   crash image snapshots the ledger length *before* the shard bytes,
//!   so every promise in the image was made strictly before the crash
//!   point — never optimistically.
//! * **Retractions are declared *before* the destructive call starts**
//!   ([`pmem::Promise::FileRetracted`]).  A crash in the middle of a
//!   rename or unlink therefore never leaves a content promise alive
//!   for a path that is legitimately gone.
//! * **Files are append-only and archive names are fresh.**  Promised
//!   prefixes are never overwritten, so a content promise stays
//!   checkable (length + FNV hash of the promised prefix) no matter how
//!   much later, unpromised data the file gained.
//!
//! The op stream is a pure function of the configured seed (each thread
//! derives its own [`rand::rngs::StdRng`]), so the chaos engine can
//! replay the same workload across crash points and across the
//! differential [`pmem::CrashPolicy`] pair.

use std::sync::Arc;

use pmem::oracle::content_hash;
use pmem::Promise;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use splitfs::SplitFs;
use vfs::{Fd, FileSystem, FsError, FsResult, OpenFlags};

/// Parameters of one crashmix run.
#[derive(Debug, Clone)]
pub struct CrashMixConfig {
    /// Seed for every thread's op stream (threads derive disjoint
    /// sub-seeds from it).
    pub seed: u64,
    /// Worker threads; each owns a disjoint directory of files.
    pub threads: usize,
    /// Live files per thread (archived/unlinked files are replaced so
    /// the working set stays at this size).
    pub files_per_thread: usize,
    /// Mixed operations each thread performs after setup.
    pub ops_per_thread: usize,
    /// Also drive an async submission ring per thread and declare the
    /// awaited epoch's content durable.
    pub use_rings: bool,
    /// Periodically fsync a file and demote it to the capacity tier
    /// (requires a tiered device).  Demoted files keep getting read and
    /// written by later ops, so promotion churns too — sampled crash
    /// points then land before, during and after migrations.
    pub tier_churn: bool,
    /// Root directory of the workload's namespace.
    pub dir: String,
}

impl Default for CrashMixConfig {
    fn default() -> Self {
        Self {
            seed: 0xC4A0_5EED,
            threads: 3,
            files_per_thread: 4,
            ops_per_thread: 96,
            use_rings: false,
            tier_churn: false,
            dir: "/chaos".to_string(),
        }
    }
}

/// One live file a worker owns: its path, open descriptor, the exact
/// bytes written so far, and how much of that prefix has been promised
/// durable.
struct FileSlot {
    path: String,
    fd: Fd,
    expected: Vec<u8>,
    durable_len: usize,
}

/// Runs the workload to completion, declaring promises into
/// `fs.device()`'s ledger as it goes (declarations are free no-ops when
/// the ledger is disabled).  Returns the total operation count.
pub fn run(fs: &Arc<SplitFs>, config: &CrashMixConfig) -> FsResult<u64> {
    if config.threads == 0 || config.files_per_thread == 0 {
        return Err(FsError::InvalidArgument);
    }
    if !fs.exists(&config.dir) {
        fs.mkdir(&config.dir)?;
    }
    for t in 0..config.threads {
        let dir = format!("{}/t{t}", config.dir);
        if !fs.exists(&dir) {
            fs.mkdir(&dir)?;
        }
    }
    let hub = config.use_rings.then(|| splitfs::ring_hub(fs));
    let mut total = 0u64;
    std::thread::scope(|scope| -> FsResult<()> {
        let mut handles = Vec::with_capacity(config.threads);
        for t in 0..config.threads {
            let fs = Arc::clone(fs);
            let hub = hub.clone();
            let config = config.clone();
            handles.push(scope.spawn(move || -> FsResult<u64> {
                let mut ops = worker(&fs, &config, t)?;
                if let Some(hub) = hub {
                    ops += ring_phase(&fs, &hub, &config, t)?;
                }
                Ok(ops)
            }));
        }
        for h in handles {
            total += h.join().expect("crashmix worker panicked")?;
        }
        Ok(())
    })?;
    Ok(total)
}

/// One worker's seeded op stream over its own directory.
fn worker(fs: &Arc<SplitFs>, config: &CrashMixConfig, t: usize) -> FsResult<u64> {
    let device = Arc::clone(fs.device());
    let mut rng = StdRng::seed_from_u64(
        config
            .seed
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (t as u64 + 1),
    );
    let mut ops = 0u64;
    let mut archived = 0usize;
    let mut slots = Vec::with_capacity(config.files_per_thread);
    for j in 0..config.files_per_thread {
        slots.push(create_slot(
            fs,
            &format!("{}/t{t}/f{j}", config.dir),
            &device,
        )?);
        ops += 1;
    }

    for _ in 0..config.ops_per_thread {
        let j = rng.random_range(0..slots.len());
        match rng.random_range(0..100u32) {
            // Append deterministic bytes; no durability is promised yet.
            0..=54 => {
                let slot = &mut slots[j];
                let len = rng.random_range(64..1200usize);
                let base = slot.expected.len();
                let buf: Vec<u8> = (0..len)
                    .map(|i| ((base + i) as u8) ^ (t as u8).wrapping_mul(31))
                    .collect();
                fs.write_at(slot.fd, base as u64, &buf)?;
                slot.expected.extend_from_slice(&buf);
            }
            // fsync: the returned call guarantees everything written so
            // far, so promise the full current prefix.
            55..=74 => {
                let slot = &mut slots[j];
                fs.fsync(slot.fd)?;
                declare_content(&device, slot);
            }
            // Batched fsync over every live file.
            75..=81 => {
                let fds: Vec<Fd> = slots.iter().map(|s| s.fd).collect();
                fs.fsync_many(&fds)?;
                for slot in &mut slots {
                    declare_content(&device, slot);
                }
            }
            // Read-back self check against the expected bytes (a live
            // invariant, independent of the post-crash oracle).
            82..=87 => {
                let slot = &slots[j];
                let mut buf = vec![0u8; slot.expected.len()];
                if !slot.expected.is_empty() {
                    fs.read_at(slot.fd, 0, &mut buf)?;
                }
                if buf != slot.expected {
                    return Err(FsError::Corrupted(format!(
                        "crashmix live read-back mismatch on {}",
                        slot.path
                    )));
                }
            }
            // Archive: rename to a fresh name that is never touched
            // again, then recreate the working slot.
            88..=93 => {
                let slot = slots.swap_remove(j);
                let new_path = format!("{}/t{t}/arch-{archived}", config.dir);
                archived += 1;
                fs.close(slot.fd)?;
                // Retract *before* the rename so a crash mid-op cannot
                // strand a content promise on the vanishing path.
                device.declare(Promise::FileRetracted {
                    path: slot.path.clone(),
                });
                fs.rename(&slot.path, &new_path)?;
                device.declare(Promise::PathDurable {
                    path: new_path.clone(),
                    exists: true,
                });
                device.declare(Promise::PathDurable {
                    path: slot.path.clone(),
                    exists: false,
                });
                if slot.durable_len > 0 {
                    // The same inode now serves the archive name; its
                    // promised prefix rode along.
                    device.declare(Promise::FileDurable {
                        path: new_path,
                        len: slot.durable_len as u64,
                        hash: content_hash(&slot.expected[..slot.durable_len]),
                    });
                }
                slots.push(create_slot(fs, &slot.path, &device)?);
            }
            // Unlink and recreate.
            _ => {
                let slot = slots.swap_remove(j);
                fs.close(slot.fd)?;
                device.declare(Promise::FileRetracted {
                    path: slot.path.clone(),
                });
                fs.unlink(&slot.path)?;
                device.declare(Promise::PathDurable {
                    path: slot.path.clone(),
                    exists: false,
                });
                slots.push(create_slot(fs, &slot.path, &device)?);
            }
        }
        ops += 1;
        // Tier churn: every few ops, make one file durable and push it
        // down to the capacity tier.  Its content promise was declared
        // before the migration starts, so a crash at any fence inside
        // the migration must recover the promised bytes — from PM before
        // the journal commit, from the segments after it.  Later appends
        // and reads of the slot promote it back, churning both
        // directions.
        if config.tier_churn && ops % 7 == 3 {
            let j = rng.random_range(0..slots.len());
            let slot = &mut slots[j];
            fs.fsync(slot.fd)?;
            declare_content(&device, slot);
            match fs.demote_fd(slot.fd) {
                Ok(_) | Err(FsError::NotSupported) => {}
                Err(e) => return Err(e),
            }
        }
    }

    // Final group commit: every surviving byte becomes promised, which
    // gives late crash points a dense set of content checks.
    let fds: Vec<Fd> = slots.iter().map(|s| s.fd).collect();
    fs.fsync_many(&fds)?;
    for slot in &mut slots {
        declare_content(&device, slot);
        fs.close(slot.fd)?;
    }
    Ok(ops + 1)
}

/// Creates (or truncates) a working file and promises its existence —
/// the create is journaled by the kernel before it returns.
fn create_slot(
    fs: &Arc<SplitFs>,
    path: &str,
    device: &Arc<pmem::PmemDevice>,
) -> FsResult<FileSlot> {
    // Withdraw any standing promise about this path *before* the create:
    // a recreate follows an unlink/rename that declared `exists: false`,
    // and the create can land durably before its own `exists: true`
    // declaration — a ledger cut in that window must check nothing.
    // Negative promises need retract-before-op just like content ones.
    device.declare(Promise::FileRetracted {
        path: path.to_string(),
    });
    let fd = fs.open(path, OpenFlags::create_truncate())?;
    device.declare(Promise::PathDurable {
        path: path.to_string(),
        exists: true,
    });
    Ok(FileSlot {
        path: path.to_string(),
        fd,
        expected: Vec::new(),
        durable_len: 0,
    })
}

/// Promises the slot's full current prefix durable (call only after a
/// guaranteeing call returned).
fn declare_content(device: &pmem::PmemDevice, slot: &mut FileSlot) {
    device.declare(Promise::FileDurable {
        path: slot.path.clone(),
        len: slot.expected.len() as u64,
        hash: content_hash(&slot.expected),
    });
    slot.durable_len = slot.expected.len();
}

/// Drives one submission ring: a burst of vectored appends, then
/// `await_epoch` on the highest completed epoch, after which the
/// covered bytes are promised durable.
fn ring_phase(
    fs: &Arc<SplitFs>,
    hub: &Arc<aio::RingFs>,
    config: &CrashMixConfig,
    t: usize,
) -> FsResult<u64> {
    let device = Arc::clone(fs.device());
    let path = format!("{}/t{t}/ring.log", config.dir);
    let fd = fs.open(&path, OpenFlags::create_truncate())?;
    device.declare(Promise::PathDurable {
        path: path.clone(),
        exists: true,
    });
    let ring = hub.ring(16);
    let mut expected = Vec::new();
    let total = 24u64;
    let (mut submitted, mut completed) = (0u64, 0u64);
    let mut max_epoch = 0u64;
    let mut cqes = Vec::new();
    while completed < total {
        while submitted < total {
            let a = vec![(t as u8).wrapping_add(1); 96];
            let b = vec![(submitted as u8).wrapping_add(7); 32];
            match ring.try_submit(aio::Sqe::appendv(submitted, fd, vec![a.clone(), b.clone()])) {
                Ok(()) => {
                    expected.extend_from_slice(&a);
                    expected.extend_from_slice(&b);
                    submitted += 1;
                }
                Err(_) => break, // ring full: harvest first
            }
        }
        hub.drain(aio::DEFAULT_DRAIN_BATCH);
        cqes.clear();
        ring.harvest(&mut cqes);
        if cqes.is_empty() {
            std::thread::yield_now();
            continue;
        }
        for cqe in &cqes {
            cqe.result.clone()?;
            max_epoch = max_epoch.max(cqe.epoch);
            completed += 1;
        }
    }
    // `await_epoch` returning is the ring API's durability promise for
    // every completion at or below the epoch — i.e. all of them.
    hub.await_epoch(max_epoch)?;
    device.declare(Promise::FileDurable {
        path,
        len: expected.len() as u64,
        hash: content_hash(&expected),
    });
    fs.close(fd)?;
    Ok(total + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitfs::{Mode, SplitConfig};

    fn strict_fs() -> Arc<SplitFs> {
        let device = pmem::PmemBuilder::new(96 * 1024 * 1024)
            .track_persistence(true)
            .build();
        let kernel = kernelfs::Ext4Dax::mkfs(device).unwrap();
        let config = SplitConfig::new(Mode::Strict)
            .with_staging(6, 2 * 1024 * 1024)
            .without_daemon();
        SplitFs::new(kernel, config).unwrap()
    }

    #[test]
    fn crashmix_runs_and_declares_promises() {
        let fs = strict_fs();
        fs.device().ledger().set_enabled(true);
        let config = CrashMixConfig {
            threads: 2,
            files_per_thread: 2,
            ops_per_thread: 40,
            ..CrashMixConfig::default()
        };
        let ops = run(&fs, &config).unwrap();
        assert!(ops > 80);
        let records = fs.device().ledger().records();
        assert!(!records.is_empty());
        let durable = records
            .iter()
            .filter(|r| matches!(r.promise, Promise::FileDurable { .. }))
            .count();
        assert!(durable > 0, "expected content promises in the ledger");
    }

    #[test]
    fn crashmix_content_promises_hold_live() {
        let fs = strict_fs();
        fs.device().ledger().set_enabled(true);
        let config = CrashMixConfig {
            threads: 1,
            files_per_thread: 2,
            ops_per_thread: 30,
            seed: 7,
            ..CrashMixConfig::default()
        };
        run(&fs, &config).unwrap();
        // Replay the ledger's *latest* content promise per path against
        // the live tree: every promised prefix must be present.
        let mut latest: std::collections::HashMap<String, Option<(u64, u64)>> =
            std::collections::HashMap::new();
        for rec in fs.device().ledger().records() {
            match rec.promise {
                Promise::FileDurable { path, len, hash } => {
                    latest.insert(path, Some((len, hash)));
                }
                Promise::FileRetracted { path } => {
                    latest.insert(path, None);
                }
                _ => {}
            }
        }
        let mut checked = 0;
        for (path, promise) in latest {
            let Some((len, hash)) = promise else { continue };
            let data = fs.read_file(&path).unwrap();
            assert!(data.len() as u64 >= len, "{path} shorter than promised");
            assert_eq!(content_hash(&data[..len as usize]), hash, "{path} prefix");
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    fn tier_churn_migrates_files_and_keeps_reads_correct() {
        let device = pmem::PmemBuilder::new(96 * 1024 * 1024)
            .track_persistence(true)
            .build();
        let kernel = kernelfs::Ext4Dax::mkfs_shaped(Arc::clone(&device), 64 * 1024 * 1024).unwrap();
        let config = SplitConfig::new(Mode::Strict)
            .with_staging(6, 2 * 1024 * 1024)
            .without_daemon();
        let fs = SplitFs::new(kernel, config).unwrap();
        fs.device().ledger().set_enabled(true);
        let wl = CrashMixConfig {
            threads: 2,
            files_per_thread: 2,
            ops_per_thread: 40,
            tier_churn: true,
            ..CrashMixConfig::default()
        };
        // The live read-back branch inside the workload verifies demoted
        // files reassemble correctly; the stats prove migrations ran.
        run(&fs, &wl).unwrap();
        let snap = fs.device().stats().snapshot();
        assert!(snap.tier_demotions > 0, "churn must demote files");
        assert!(
            snap.tier_promotions > 0,
            "later writes/reads must promote some back"
        );
    }

    #[test]
    fn ring_phase_declares_awaited_epoch_content() {
        let fs = strict_fs();
        fs.device().ledger().set_enabled(true);
        let config = CrashMixConfig {
            threads: 1,
            files_per_thread: 1,
            ops_per_thread: 5,
            use_rings: true,
            ..CrashMixConfig::default()
        };
        run(&fs, &config).unwrap();
        let ring_promise = fs.device().ledger().records().into_iter().any(|r| {
            matches!(&r.promise, Promise::FileDurable { path, len, .. }
                if path.ends_with("ring.log") && *len > 0)
        });
        assert!(ring_promise, "ring phase must promise awaited content");
        let data = fs.read_file("/chaos/t0/ring.log").unwrap();
        assert_eq!(data.len(), 24 * 128);
    }
}
