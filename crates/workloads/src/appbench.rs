//! Application benchmark drivers (Figures 5, 6 and Table 7).
//!
//! These functions run the `apps` crate's LevelDB-like, SQLite-like and
//! Redis-like applications on any [`vfs::FileSystem`], measuring only the
//! workload phase (setup/load traffic can be measured separately by
//! requesting the load result) and returning [`RunResult`]s with the
//! simulated time and device statistics the experiment tables need.

use std::sync::Arc;

use apps::aof::{AofStore, FsyncPolicy};
use apps::lsm::{LsmConfig, LsmStore};
use vfs::{FileSystem, FsResult};

use crate::tpcc::{TpccConfig, TpccDriver};
use crate::ycsb::{YcsbGenerator, YcsbOp, YcsbWorkload};
use crate::RunResult;

/// Parameters for a YCSB-on-LSM run.
#[derive(Debug, Clone)]
pub struct YcsbRunConfig {
    /// Number of records loaded before the run phase.
    pub record_count: u64,
    /// Number of operations in the run phase.
    pub op_count: u64,
    /// Value size in bytes (YCSB default is 10 × 100 B fields).
    pub value_size: usize,
    /// LSM store configuration.
    pub lsm: LsmConfig,
    /// Random seed.
    pub seed: u64,
}

impl Default for YcsbRunConfig {
    fn default() -> Self {
        Self {
            record_count: 10_000,
            op_count: 10_000,
            value_size: 1000,
            lsm: LsmConfig::default(),
            seed: 42,
        }
    }
}

/// Result of the two YCSB phases.
#[derive(Debug, Clone)]
pub struct YcsbResult {
    /// The load phase (insert `record_count` records).
    pub load: RunResult,
    /// The run phase (`op_count` operations of the chosen workload).
    pub run: RunResult,
}

fn measure<F>(fs: &Arc<dyn FileSystem>, workload: &str, ops: u64, body: F) -> FsResult<RunResult>
where
    F: FnOnce() -> FsResult<()>,
{
    let device = Arc::clone(fs.device());
    let start_stats = device.stats().snapshot();
    let start_ns = device.clock().now_ns_f64();
    body()?;
    let elapsed = device.clock().now_ns_f64() - start_ns;
    let stats = device.stats().snapshot().delta_since(&start_stats);
    Ok(RunResult::new(fs.name(), workload, ops, elapsed, stats))
}

/// Runs one YCSB workload on the LSM store over `fs`.
pub fn run_ycsb(
    fs: &Arc<dyn FileSystem>,
    workload: YcsbWorkload,
    config: &YcsbRunConfig,
) -> FsResult<YcsbResult> {
    let mut generator = YcsbGenerator::new(
        workload,
        config.record_count,
        config.value_size,
        config.seed,
    );
    let mut store = LsmStore::open(Arc::clone(fs), config.lsm.clone())?;

    // Load phase.
    let keys: Vec<u64> = generator.load_keys().collect();
    let load = measure(
        fs,
        &format!("YCSB-{} load", workload.label()),
        config.record_count,
        || {
            for key in keys {
                let value = generator.value_for(key);
                store.put(&YcsbGenerator::format_key(key), &value)?;
            }
            store.flush_memtable()?;
            Ok(())
        },
    )?;

    // Run phase.
    let ops: Vec<YcsbOp> = (0..config.op_count).map(|_| generator.next_op()).collect();
    let run = measure(
        fs,
        &format!("YCSB-{} run", workload.label()),
        config.op_count,
        || {
            for op in ops {
                match op {
                    YcsbOp::Read(key) => {
                        store.get(&YcsbGenerator::format_key(key))?;
                    }
                    YcsbOp::Update(key, value) | YcsbOp::Insert(key, value) => {
                        store.put(&YcsbGenerator::format_key(key), &value)?;
                    }
                    YcsbOp::Scan(key, count) => {
                        store.scan(&YcsbGenerator::format_key(key), count)?;
                    }
                    YcsbOp::ReadModifyWrite(key, value) => {
                        let k = YcsbGenerator::format_key(key);
                        store.get(&k)?;
                        store.put(&k, &value)?;
                    }
                }
            }
            store.shutdown()?;
            Ok(())
        },
    )?;

    Ok(YcsbResult { load, run })
}

/// Runs `transactions` TPC-C-like transactions on the WAL database over
/// `fs`.  Setup (table population) is excluded from the measured result.
pub fn run_tpcc(
    fs: &Arc<dyn FileSystem>,
    config: &TpccConfig,
    transactions: u64,
) -> FsResult<RunResult> {
    let mut driver = TpccDriver::setup(Arc::clone(fs), config.clone())?;
    measure(fs, "TPC-C", transactions, || {
        driver.run(transactions)?;
        driver.shutdown()?;
        Ok(())
    })
}

/// Runs `sets` Redis-like SET commands against the AOF store over `fs`
/// (the paper's "Set in Redis" workload: 1 M key-value pairs, AOF mode,
/// periodic fsync).
pub fn run_redis_set(fs: &Arc<dyn FileSystem>, sets: u64, fsync_every: u64) -> FsResult<RunResult> {
    let mut store = AofStore::open(
        Arc::clone(fs),
        "/redis.aof",
        FsyncPolicy::EveryN(fsync_every.max(1)),
    )?;
    measure(fs, "Redis SET", sets, || {
        for i in 0..sets {
            store.set(&format!("key:{i:012}"), &format!("value-{i:032}"))?;
        }
        store.shutdown()?;
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelfs::Ext4Dax;
    use pmem::PmemBuilder;

    fn fs() -> Arc<dyn FileSystem> {
        let device = PmemBuilder::new(256 * 1024 * 1024)
            .track_persistence(false)
            .build();
        Ext4Dax::mkfs(device).unwrap() as Arc<dyn FileSystem>
    }

    fn tiny_ycsb() -> YcsbRunConfig {
        YcsbRunConfig {
            record_count: 200,
            op_count: 300,
            value_size: 100,
            lsm: LsmConfig {
                memtable_bytes: 32 * 1024,
                ..LsmConfig::default()
            },
            seed: 1,
        }
    }

    #[test]
    fn ycsb_a_runs_and_produces_throughput() {
        let fs = fs();
        let result = run_ycsb(&fs, YcsbWorkload::A, &tiny_ycsb()).unwrap();
        assert_eq!(result.load.ops, 200);
        assert_eq!(result.run.ops, 300);
        assert!(result.run.kops_per_sec() > 0.0);
        assert!(result.run.software_overhead_ns() > 0.0);
    }

    #[test]
    fn ycsb_e_scans_do_not_crash() {
        let fs = fs();
        let result = run_ycsb(&fs, YcsbWorkload::E, &tiny_ycsb()).unwrap();
        assert!(result.run.elapsed_ns > 0.0);
    }

    #[test]
    fn tpcc_runs_transactions() {
        let fs = fs();
        let config = TpccConfig {
            warehouses: 1,
            districts_per_warehouse: 2,
            customers_per_district: 10,
            items: 50,
            ..TpccConfig::default()
        };
        let result = run_tpcc(&fs, &config, 50).unwrap();
        assert_eq!(result.ops, 50);
        assert!(result.ns_per_op() > 0.0);
    }

    #[test]
    fn redis_sets_append_to_the_aof() {
        let fs = fs();
        let result = run_redis_set(&fs, 500, 50).unwrap();
        assert_eq!(result.ops, 500);
        assert!(fs.stat("/redis.aof").unwrap().size > 0);
    }
}
