//! Concurrent metadata scale-out workload (`harness -- metadata`).
//!
//! The namespace-sharding experiment: `threads` workers, each confined to
//! its own **deep** leaf directory under a shared prefix
//! (`/meta/t<t>/d0/d1/.../d<depth-1>`), drive a varmail-style
//! create/append/fsync/unlink churn, then an aging pass that bulk-creates
//! files (the paper's million-file aging, scaled to the simulated
//! device's 65,536-inode table — [`kernelfs::Ext4Dax`]'s allocator
//! returns `NoSpace` past it), then a resolve pass that repeatedly stats
//! every aged deep path.  With the full-path lookup cache the resolve
//! pass is one hash probe per stat instead of a five-component walk, and
//! with the namespace sharded by parent directory the disjoint leaf
//! directories contend on (almost) nothing.
//!
//! As in [`crate::walshard`], the headline metrics are **critical-path**
//! simulated rates: each worker measures its own simulated time
//! ([`pmem::SimClock::thread_time_ns`] — its charges plus simulated lock
//! waits), and each phase's makespan is the maximum over the workers.
//! Fixed per-thread work means perfect scaling keeps the makespan flat as
//! threads grow, so creates/sec and resolves/sec grow ~linearly.  The
//! result also carries the phase-scoped path-cache hit rate, the
//! namespace-shard lock-wait count, and a consistency-failure count from
//! the post-run fsck ([`Ext4Dax::check_namespace`]) plus a full stat walk
//! of every aged file — a run that corrupts the tree must not report
//! healthy throughput.

use std::sync::Arc;
use std::time::Instant;

use kernelfs::Ext4Dax;
use parking_lot::Mutex;
use pmem::{SimClock, StatsSnapshot};
use vfs::{FileSystem, FsError, FsResult, OpenFlags};

/// Parameters of one metadata scale-out run.
#[derive(Debug, Clone)]
pub struct MetaloadConfig {
    /// Worker threads; each owns one deep leaf directory.
    pub threads: usize,
    /// Churn iterations per thread (each is one
    /// create/append/fsync/close/open/read/close/unlink sequence).
    pub churn_iters: u64,
    /// Files the aging pass creates per thread.  Every aged file consumes
    /// one inode that is never reused, so
    /// `threads * (churn_iters + aging_files)` must stay inside the
    /// 65,536-inode table.
    pub aging_files: u64,
    /// Times the resolve pass stats each aged file.
    pub resolve_repeats: u64,
    /// Bytes appended (and fsynced) per churn iteration.
    pub append_size: usize,
    /// Directory components between `/meta/t<t>` and the leaf, so every
    /// workload path is `depth + 2` components deep.
    pub depth: usize,
    /// Root of the shared directory tree.
    pub dir: String,
}

impl Default for MetaloadConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            churn_iters: 96,
            aging_files: 512,
            resolve_repeats: 4,
            append_size: 1024,
            depth: 3,
            dir: "/meta".to_string(),
        }
    }
}

/// The outcome of one metadata scale-out run.
#[derive(Debug, Clone)]
pub struct MetaloadResult {
    /// Worker threads used.
    pub threads: usize,
    /// Files created across all threads (churn + aging).
    pub creates: u64,
    /// Stats issued by the resolve pass across all threads.
    pub resolves: u64,
    /// Churn-phase makespan: max over workers of own simulated ns.
    pub churn_critical_ns: f64,
    /// Aging-phase makespan in simulated ns.
    pub aging_critical_ns: f64,
    /// Resolve-phase makespan in simulated ns.
    pub resolve_critical_ns: f64,
    /// Host wall-clock ns for the three measured phases together.
    pub wall_ns: f64,
    /// Path-cache hit rate over the resolve pass only (hits divided by
    /// hits plus misses).
    pub cache_hit_rate: f64,
    /// Namespace-shard lock waits over the whole run; ≈ 0 when the
    /// per-thread directories land on distinct shards.
    pub ns_shard_lock_waits: u64,
    /// Path-cache invalidations over the whole run (one per unlink).
    pub cache_invalidations: u64,
    /// Fsck violations plus aged files that failed to stat after the run.
    /// Anything other than zero is a correctness bug.
    pub consistency_failures: u64,
    /// Device statistics delta for the whole run.
    pub stats: StatsSnapshot,
}

impl MetaloadResult {
    /// Creates per simulated second on the critical path (churn creates
    /// over the churn makespan plus aging creates over the aging
    /// makespan, i.e. total creates over the total create-phase time).
    pub fn creates_per_sec(&self) -> f64 {
        let ns = self.churn_critical_ns + self.aging_critical_ns;
        if ns <= 0.0 {
            0.0
        } else {
            self.creates as f64 / ns * 1e9
        }
    }

    /// Resolves per simulated second on the resolve-phase critical path.
    pub fn resolves_per_sec(&self) -> f64 {
        if self.resolve_critical_ns <= 0.0 {
            0.0
        } else {
            self.resolves as f64 / self.resolve_critical_ns * 1e9
        }
    }
}

/// Runs one phase across `threads` workers and returns its makespan: the
/// maximum over workers of their own simulated time.
fn phase<F: Fn(usize) + Sync>(threads: usize, body: F) -> f64 {
    let times: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(threads));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let body = &body;
            let times = &times;
            scope.spawn(move || {
                let t0 = SimClock::thread_time_ns();
                body(t);
                times.lock().push(SimClock::thread_time_ns() - t0);
            });
        }
    });
    times.into_inner().into_iter().fold(0.0f64, f64::max)
}

/// Runs the workload on `fs` (any mount — U-Split or the bare kernel)
/// with `kernel` as the underlying kernel file system for the post-run
/// fsck.  Returns the critical-path rates, the resolve-phase cache hit
/// rate, and the consistency verdict.
pub fn run(
    fs: &Arc<dyn FileSystem>,
    kernel: &Arc<Ext4Dax>,
    config: &MetaloadConfig,
) -> FsResult<MetaloadResult> {
    if config.threads == 0 || config.churn_iters == 0 || config.aging_files == 0 {
        return Err(FsError::InvalidArgument);
    }
    let device = Arc::clone(fs.device());

    // Build the shared deep tree (untimed setup).
    if !fs.exists(&config.dir) {
        fs.mkdir(&config.dir)?;
    }
    let leaves: Vec<String> = (0..config.threads)
        .map(|t| {
            let mut path = format!("{}/t{t}", config.dir);
            if !fs.exists(&path) {
                fs.mkdir(&path)?;
            }
            for d in 0..config.depth {
                path.push_str(&format!("/d{d}"));
                if !fs.exists(&path) {
                    fs.mkdir(&path)?;
                }
            }
            Ok(path)
        })
        .collect::<FsResult<_>>()?;

    let before = device.stats().snapshot();
    let start_wall = Instant::now();

    // Phase 1 — churn: varmail-style create/append/fsync/unlink, each
    // thread inside its own leaf.
    let append_block = vec![0xC3u8; config.append_size];
    let churn_critical_ns = phase(config.threads, |t| {
        let leaf = &leaves[t];
        let mut buf = vec![0u8; config.append_size];
        for i in 0..config.churn_iters {
            let path = format!("{leaf}/churn-{i}");
            let fd = fs.open(&path, OpenFlags::create()).expect("churn create");
            fs.append(fd, &append_block).expect("churn append");
            fs.fsync(fd).expect("churn fsync");
            fs.close(fd).expect("churn close");
            let fd = fs
                .open(&path, OpenFlags::read_only())
                .expect("churn reopen");
            fs.read_at(fd, 0, &mut buf).expect("churn read");
            fs.close(fd).expect("churn close");
            fs.unlink(&path).expect("churn unlink");
        }
    });

    // Phase 2 — aging: bulk-create the long-lived file population.
    let aging_critical_ns = phase(config.threads, |t| {
        let leaf = &leaves[t];
        for i in 0..config.aging_files {
            let path = format!("{leaf}/aged-{i}");
            let fd = fs.open(&path, OpenFlags::create()).expect("aging create");
            fs.close(fd).expect("aging close");
        }
    });

    // Phase 3 — resolve: repeated deep-path stats, issued to the kernel
    // directly.  U-Split answers a stat of a file it has open from its
    // user-space attribute cache (§3.5) without entering the kernel at
    // all; the subject here is the kernel namespace every metadata
    // operation (open, unlink, rename, any U-Split miss) must resolve
    // through, so the pass drives `kernel.stat` and the hit rate is
    // scoped to this phase alone.
    let resolve_before = device.stats().snapshot();
    let resolve_critical_ns = phase(config.threads, |t| {
        let leaf = &leaves[t];
        for _ in 0..config.resolve_repeats {
            for i in 0..config.aging_files {
                kernel
                    .stat(&format!("{leaf}/aged-{i}"))
                    .expect("resolve stat");
            }
        }
    });
    let resolve_delta = device.stats().snapshot().delta(&resolve_before);
    let wall_ns = start_wall.elapsed().as_nanos() as f64;

    // Phase 4 — verify: whole-tree fsck plus a stat of every aged file.
    let mut consistency_failures = kernel.check_namespace().len() as u64;
    for leaf in &leaves {
        for i in 0..config.aging_files {
            if fs.stat(&format!("{leaf}/aged-{i}")).is_err() {
                consistency_failures += 1;
            }
        }
    }

    let stats = device.stats().snapshot().delta(&before);
    let resolves_issued = resolve_delta.path_cache_hits + resolve_delta.path_cache_misses;
    Ok(MetaloadResult {
        threads: config.threads,
        creates: config.threads as u64 * (config.churn_iters + config.aging_files),
        resolves: config.threads as u64 * config.resolve_repeats * config.aging_files,
        churn_critical_ns,
        aging_critical_ns,
        resolve_critical_ns,
        wall_ns,
        cache_hit_rate: if resolves_issued == 0 {
            0.0
        } else {
            resolve_delta.path_cache_hits as f64 / resolves_issued as f64
        },
        ns_shard_lock_waits: stats.ns_shard_lock_waits,
        cache_invalidations: stats.path_cache_invalidations,
        consistency_failures,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemBuilder;

    fn kernel() -> Arc<Ext4Dax> {
        let device = PmemBuilder::new(256 * 1024 * 1024)
            .track_persistence(false)
            .build();
        Ext4Dax::mkfs(device).unwrap()
    }

    #[test]
    fn metaload_keeps_tree_consistent_and_hits_the_path_cache() {
        let kernel = kernel();
        let fs = Arc::clone(&kernel) as Arc<dyn FileSystem>;
        let config = MetaloadConfig {
            threads: 4,
            churn_iters: 24,
            aging_files: 64,
            resolve_repeats: 3,
            ..MetaloadConfig::default()
        };
        let result = run(&fs, &kernel, &config).unwrap();
        assert_eq!(result.consistency_failures, 0);
        assert_eq!(result.creates, 4 * (24 + 64));
        assert_eq!(result.resolves, 4 * 3 * 64);
        assert!(result.creates_per_sec() > 0.0);
        assert!(result.resolves_per_sec() > 0.0);
        // Aged files were cached at create; every resolve-phase stat is a
        // hash probe.
        assert!(
            result.cache_hit_rate > 0.9,
            "deep-tree resolve should be cache-served: hit rate {}",
            result.cache_hit_rate
        );
        // One invalidation per churn unlink.
        assert!(result.cache_invalidations >= 4 * 24);
    }

    #[test]
    fn metaload_rejects_empty_configs() {
        let kernel = kernel();
        let fs = Arc::clone(&kernel) as Arc<dyn FileSystem>;
        let config = MetaloadConfig {
            threads: 0,
            ..MetaloadConfig::default()
        };
        assert!(run(&fs, &kernel, &config).is_err());
    }
}
