//! YCSB core workload generator.
//!
//! Reproduces the Yahoo! Cloud Serving Benchmark request streams the paper
//! runs against LevelDB: workloads A–F with their standard operation mixes
//! and key distributions (zipfian, latest, uniform).  The generator is
//! deterministic for a given seed so experiments are repeatable.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which of the six core workloads to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YcsbWorkload {
    /// 50% reads, 50% updates, zipfian ("update heavy").
    A,
    /// 95% reads, 5% updates, zipfian ("read mostly").
    B,
    /// 100% reads, zipfian ("read only").
    C,
    /// 95% reads, 5% inserts, latest ("read latest").
    D,
    /// 95% scans, 5% inserts, zipfian ("short ranges").
    E,
    /// 50% reads, 50% read-modify-writes, zipfian.
    F,
}

impl YcsbWorkload {
    /// All six workloads in order.
    pub const ALL: [YcsbWorkload; 6] = [
        YcsbWorkload::A,
        YcsbWorkload::B,
        YcsbWorkload::C,
        YcsbWorkload::D,
        YcsbWorkload::E,
        YcsbWorkload::F,
    ];

    /// Workload label ("A" … "F").
    pub fn label(self) -> &'static str {
        match self {
            YcsbWorkload::A => "A",
            YcsbWorkload::B => "B",
            YcsbWorkload::C => "C",
            YcsbWorkload::D => "D",
            YcsbWorkload::E => "E",
            YcsbWorkload::F => "F",
        }
    }

    /// (read, update, insert, scan, read-modify-write) proportions.
    fn mix(self) -> (f64, f64, f64, f64, f64) {
        match self {
            YcsbWorkload::A => (0.5, 0.5, 0.0, 0.0, 0.0),
            YcsbWorkload::B => (0.95, 0.05, 0.0, 0.0, 0.0),
            YcsbWorkload::C => (1.0, 0.0, 0.0, 0.0, 0.0),
            YcsbWorkload::D => (0.95, 0.0, 0.05, 0.0, 0.0),
            YcsbWorkload::E => (0.0, 0.0, 0.05, 0.95, 0.0),
            YcsbWorkload::F => (0.5, 0.0, 0.0, 0.0, 0.5),
        }
    }

    fn uses_latest_distribution(self) -> bool {
        matches!(self, YcsbWorkload::D)
    }
}

/// One generated request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YcsbOp {
    /// Read a single record.
    Read(u64),
    /// Overwrite a record with a new value.
    Update(u64, Vec<u8>),
    /// Insert a new record (key beyond the loaded range).
    Insert(u64, Vec<u8>),
    /// Scan `count` records starting at the key.
    Scan(u64, usize),
    /// Read a record and write it back modified.
    ReadModifyWrite(u64, Vec<u8>),
}

impl YcsbOp {
    /// The record key this operation targets.
    pub fn key(&self) -> u64 {
        match self {
            YcsbOp::Read(k)
            | YcsbOp::Update(k, _)
            | YcsbOp::Insert(k, _)
            | YcsbOp::Scan(k, _)
            | YcsbOp::ReadModifyWrite(k, _) => *k,
        }
    }
}

/// Zipfian generator over `[0, n)` with the YCSB default skew
/// (theta = 0.99), following the standard Gray et al. construction used by
/// the original YCSB `ZipfianGenerator`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    /// Creates a generator over `n` items.
    pub fn new(n: u64) -> Self {
        let theta = 0.99;
        let zeta2theta = Self::zeta(2, theta);
        let zetan = Self::zeta(n, theta);
        Self {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan),
            zeta2theta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact up to a cap, then the standard integral approximation so
        // that large record counts do not make construction O(n).
        const EXACT: u64 = 100_000;
        let exact_n = n.min(EXACT);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > EXACT {
            // ∫ x^-theta dx from EXACT to n.
            sum +=
                ((n as f64).powf(1.0 - theta) - (EXACT as f64).powf(1.0 - theta)) / (1.0 - theta);
        }
        sum
    }

    /// Draws the next zipfian-distributed value in `[0, n)`.
    pub fn next(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha);
        (spread as u64).min(self.n - 1)
    }

    /// The skew parameter (always 0.99 here).
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Number of items.
    pub fn item_count(&self) -> u64 {
        self.n
    }

    /// The `zeta(2, theta)` constant (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

/// Generator of YCSB request streams.
#[derive(Debug)]
pub struct YcsbGenerator {
    workload: YcsbWorkload,
    record_count: u64,
    inserted: u64,
    value_size: usize,
    zipf: Zipfian,
    rng: StdRng,
}

impl YcsbGenerator {
    /// Creates a generator for `workload` over `record_count` pre-loaded
    /// records with `value_size`-byte values.
    pub fn new(workload: YcsbWorkload, record_count: u64, value_size: usize, seed: u64) -> Self {
        Self {
            workload,
            record_count,
            inserted: record_count,
            value_size,
            zipf: Zipfian::new(record_count.max(1)),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The key space size including inserts so far.
    pub fn key_count(&self) -> u64 {
        self.inserted
    }

    /// YCSB key formatting ("user" prefix).
    pub fn format_key(key: u64) -> Vec<u8> {
        format!("user{key:016}").into_bytes()
    }

    /// Generates the keys for the load phase (0..record_count, in insertion
    /// order).
    pub fn load_keys(&self) -> impl Iterator<Item = u64> + '_ {
        0..self.record_count
    }

    /// Generates a deterministic value for a key.
    pub fn value_for(&mut self, key: u64) -> Vec<u8> {
        let mut value = vec![0u8; self.value_size];
        let mut state = key.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for b in value.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (state >> 56) as u8;
        }
        value
    }

    fn next_key(&mut self) -> u64 {
        if self.workload.uses_latest_distribution() {
            // "Latest": zipfian over recency.
            let offset = self.zipf.next(&mut self.rng).min(self.inserted - 1);
            self.inserted - 1 - offset
        } else {
            self.zipf.next(&mut self.rng).min(self.inserted - 1)
        }
    }

    /// Generates the next request.
    pub fn next_op(&mut self) -> YcsbOp {
        let (read, update, insert, scan, rmw) = self.workload.mix();
        let r: f64 = self.rng.random();
        let key = self.next_key();
        if r < read {
            YcsbOp::Read(key)
        } else if r < read + update {
            let value = self.value_for(key ^ 0xFF);
            YcsbOp::Update(key, value)
        } else if r < read + update + insert {
            let new_key = self.inserted;
            self.inserted += 1;
            let value = self.value_for(new_key);
            YcsbOp::Insert(new_key, value)
        } else if r < read + update + insert + scan {
            let len = self.rng.random_range(1..=100);
            YcsbOp::Scan(key, len)
        } else {
            let _ = rmw;
            let value = self.value_for(key ^ 0xAA);
            YcsbOp::ReadModifyWrite(key, value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let z = Zipfian::new(1000);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..50_000 {
            let v = z.next(&mut rng);
            assert!(v < 1000);
            *counts.entry(v).or_default() += 1;
        }
        // The most popular item should be far more frequent than the
        // uniform expectation (50 per item).
        let max = counts.values().max().copied().unwrap();
        assert!(max > 1000, "zipfian skew too weak: max count {max}");
    }

    #[test]
    fn workload_mixes_match_ycsb_definitions() {
        for wl in YcsbWorkload::ALL {
            let (r, u, i, s, f) = wl.mix();
            assert!((r + u + i + s + f - 1.0).abs() < 1e-9, "workload {wl:?}");
        }
        let mut generator = YcsbGenerator::new(YcsbWorkload::A, 1000, 100, 42);
        let mut reads = 0;
        let mut updates = 0;
        for _ in 0..10_000 {
            match generator.next_op() {
                YcsbOp::Read(_) => reads += 1,
                YcsbOp::Update(..) => updates += 1,
                other => panic!("workload A must not produce {other:?}"),
            }
        }
        let ratio = reads as f64 / (reads + updates) as f64;
        assert!((ratio - 0.5).abs() < 0.05, "A read ratio {ratio}");
    }

    #[test]
    fn workload_e_produces_scans() {
        let mut generator = YcsbGenerator::new(YcsbWorkload::E, 1000, 100, 1);
        let mut scans = 0;
        for _ in 0..1000 {
            if let YcsbOp::Scan(_, len) = generator.next_op() {
                assert!((1..=100).contains(&len));
                scans += 1;
            }
        }
        assert!(scans > 900, "E is 95% scans, saw {scans}");
    }

    #[test]
    fn inserts_extend_the_key_space() {
        let mut generator = YcsbGenerator::new(YcsbWorkload::D, 100, 100, 3);
        let before = generator.key_count();
        let mut inserts = 0;
        for _ in 0..1000 {
            if let YcsbOp::Insert(key, _) = generator.next_op() {
                assert!(key >= 100);
                inserts += 1;
            }
        }
        assert_eq!(generator.key_count(), before + inserts);
        assert!(inserts > 0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = YcsbGenerator::new(YcsbWorkload::B, 500, 64, 99);
        let mut b = YcsbGenerator::new(YcsbWorkload::B, 500, 64, 99);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn keys_format_with_fixed_width() {
        assert_eq!(YcsbGenerator::format_key(7).len(), 20);
        assert!(YcsbGenerator::format_key(7) < YcsbGenerator::format_key(10));
    }
}
