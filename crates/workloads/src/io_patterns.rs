//! IO-pattern microbenchmarks (paper §5.6, Figure 4, and the Figure 3 /
//! Table 1 append microbenchmark).
//!
//! Each benchmark performs 4 KiB operations over a single file: sequential
//! reads, random reads, sequential overwrites, random overwrites, and
//! appends.  Write benchmarks issue an `fsync` every `fsync_every`
//! operations (the paper uses every 10 for Figure 3 and at the end for
//! Table 1).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use vfs::{FileSystem, FsResult, OpenFlags};

use crate::RunResult;

/// Operation size used by every pattern (the paper's unit).
pub const OP_SIZE: usize = 4096;

/// The five access patterns of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoPattern {
    /// Read the file front to back in 4 KiB units.
    SequentialRead,
    /// Read 4 KiB units in random order.
    RandomRead,
    /// Overwrite the file front to back in 4 KiB units.
    SequentialWrite,
    /// Overwrite 4 KiB units in random order.
    RandomWrite,
    /// Append 4 KiB units to an initially empty file.
    Append,
}

impl IoPattern {
    /// All five patterns in the order Figure 4 lists them.
    pub const ALL: [IoPattern; 5] = [
        IoPattern::SequentialRead,
        IoPattern::RandomRead,
        IoPattern::SequentialWrite,
        IoPattern::RandomWrite,
        IoPattern::Append,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            IoPattern::SequentialRead => "seq-read",
            IoPattern::RandomRead => "rand-read",
            IoPattern::SequentialWrite => "seq-write",
            IoPattern::RandomWrite => "rand-write",
            IoPattern::Append => "append",
        }
    }

    /// Whether this pattern writes.
    pub fn is_write(self) -> bool {
        !matches!(self, IoPattern::SequentialRead | IoPattern::RandomRead)
    }
}

/// Parameters for one microbenchmark run.
#[derive(Debug, Clone)]
pub struct IoBenchConfig {
    /// Total bytes read or written (the paper uses a 128 MiB file).
    pub total_bytes: u64,
    /// Issue an `fsync` after this many write operations (0 = only at the
    /// end).
    pub fsync_every: u64,
    /// Path of the benchmark file.
    pub path: String,
    /// Random seed for the random patterns.
    pub seed: u64,
}

impl Default for IoBenchConfig {
    fn default() -> Self {
        Self {
            total_bytes: 128 * 1024 * 1024,
            fsync_every: 10,
            path: "/bench.dat".to_string(),
            seed: 7,
        }
    }
}

/// Runs one IO pattern against `fs`, returning ops + timing + stats.
pub fn run_pattern(
    fs: &Arc<dyn FileSystem>,
    pattern: IoPattern,
    config: &IoBenchConfig,
) -> FsResult<RunResult> {
    let ops = config.total_bytes / OP_SIZE as u64;
    let device = Arc::clone(fs.device());

    // Pre-create the file for read/overwrite patterns (setup is not
    // measured).  Writing in 2 MiB chunks gives the allocator large,
    // huge-page-alignable extents, as a realistic file copy would.
    if pattern != IoPattern::Append {
        let fd = fs.open(&config.path, OpenFlags::create_truncate())?;
        let chunk = vec![0x5Au8; 2 * 1024 * 1024];
        let mut off = 0u64;
        while off < config.total_bytes {
            let n = chunk.len().min((config.total_bytes - off) as usize);
            fs.write_at(fd, off, &chunk[..n])?;
            off += n as u64;
        }
        fs.fsync(fd)?;
        fs.close(fd)?;
    } else if fs.exists(&config.path) {
        fs.unlink(&config.path)?;
    }

    let mut offsets: Vec<u64> = (0..ops).map(|i| i * OP_SIZE as u64).collect();
    if matches!(pattern, IoPattern::RandomRead | IoPattern::RandomWrite) {
        let mut rng = StdRng::seed_from_u64(config.seed);
        offsets.shuffle(&mut rng);
    }

    let fd = fs.open(&config.path, OpenFlags::create())?;
    let mut buf = vec![0u8; OP_SIZE];
    let write_block: Vec<u8> = (0..OP_SIZE).map(|i| (i % 251) as u8).collect();

    // Measure only the benchmark loop.
    device.clock().reset();
    device.stats().reset();
    let start_stats = device.stats().snapshot();
    let start_ns = device.clock().now_ns_f64();

    match pattern {
        IoPattern::SequentialRead | IoPattern::RandomRead => {
            for &off in &offsets {
                fs.read_at(fd, off, &mut buf)?;
            }
        }
        IoPattern::SequentialWrite | IoPattern::RandomWrite => {
            for (i, &off) in offsets.iter().enumerate() {
                fs.write_at(fd, off, &write_block)?;
                if config.fsync_every > 0 && (i as u64 + 1).is_multiple_of(config.fsync_every) {
                    fs.fsync(fd)?;
                }
            }
            if config.fsync_every > 0 {
                fs.fsync(fd)?;
            }
        }
        IoPattern::Append => {
            for i in 0..ops {
                fs.append(fd, &write_block)?;
                if config.fsync_every > 0 && (i + 1) % config.fsync_every == 0 {
                    fs.fsync(fd)?;
                }
            }
            if config.fsync_every > 0 {
                fs.fsync(fd)?;
            }
        }
    }

    let elapsed = device.clock().now_ns_f64() - start_ns;
    let stats = device.stats().snapshot().delta_since(&start_stats);
    fs.close(fd)?;
    Ok(RunResult::new(
        fs.name(),
        format!("io-{}", pattern.label()),
        ops,
        elapsed,
        stats,
    ))
}

/// Runs the vectored-append microbenchmark: the same byte stream as
/// [`IoPattern::Append`], but each "record" is assembled from
/// `slices_per_op` discontiguous parts and committed with **one**
/// [`FileSystem::appendv`] per record (vs `slices_per_op` plain `append`s
/// when `vectored` is false).  Durability comes from one `fsync` per
/// record batch, mirroring a WAL writer that gathers a transaction's
/// entries.  The fence and journal-transaction counters in the returned
/// stats are how the comparison is scored.
pub fn run_appendv(
    fs: &Arc<dyn FileSystem>,
    config: &IoBenchConfig,
    slices_per_op: usize,
    vectored: bool,
) -> FsResult<RunResult> {
    let slices_per_op = slices_per_op.max(1);
    let slice_size = OP_SIZE / slices_per_op;
    let records = config.total_bytes / (slice_size * slices_per_op) as u64;
    let device = Arc::clone(fs.device());
    if fs.exists(&config.path) {
        fs.unlink(&config.path)?;
    }
    let fd = fs.open(&config.path, OpenFlags::create())?;
    let parts: Vec<Vec<u8>> = (0..slices_per_op)
        .map(|i| {
            (0..slice_size)
                .map(|j| ((i * 31 + j) % 251) as u8)
                .collect()
        })
        .collect();
    let iov: Vec<vfs::IoVec<'_>> = parts.iter().map(|p| vfs::IoVec::new(p)).collect();

    device.clock().reset();
    device.stats().reset();
    let start_stats = device.stats().snapshot();
    let start_ns = device.clock().now_ns_f64();
    for i in 0..records {
        if vectored {
            fs.appendv(fd, &iov)?;
        } else {
            for part in &parts {
                fs.append(fd, part)?;
            }
        }
        if config.fsync_every > 0 && (i + 1).is_multiple_of(config.fsync_every) {
            fs.fsync(fd)?;
        }
    }
    fs.fsync(fd)?;
    let elapsed = device.clock().now_ns_f64() - start_ns;
    let stats = device.stats().snapshot().delta_since(&start_stats);
    fs.close(fd)?;
    Ok(RunResult::new(
        fs.name(),
        if vectored {
            "io-appendv".to_string()
        } else {
            "io-append-loop".to_string()
        },
        records,
        elapsed,
        stats,
    ))
}

/// The Table 1 microbenchmark: append 4 KiB blocks (128 MiB total by
/// default) with a single `fsync` at the end, and report the mean cost of
/// one append plus its software overhead above the raw device write.
pub fn append_software_overhead(
    fs: &Arc<dyn FileSystem>,
    total_bytes: u64,
) -> FsResult<AppendOverhead> {
    let config = IoBenchConfig {
        total_bytes,
        fsync_every: 0,
        path: "/append-overhead.dat".to_string(),
        seed: 1,
    };
    let result = run_pattern(fs, IoPattern::Append, &config)?;
    let device_write_ns = fs.device().cost().pm_write_cost(OP_SIZE);
    let per_op = result.ns_per_op();
    Ok(AppendOverhead {
        fs_name: result.fs_name.clone(),
        append_ns: per_op,
        overhead_ns: per_op - device_write_ns,
        overhead_pct: (per_op - device_write_ns) / device_write_ns * 100.0,
        device_write_ns,
    })
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct AppendOverhead {
    /// File-system name.
    pub fs_name: String,
    /// Mean simulated time per 4 KiB append.
    pub append_ns: f64,
    /// Software overhead above the raw device write.
    pub overhead_ns: f64,
    /// Overhead as a percentage of the raw device write.
    pub overhead_pct: f64,
    /// The raw 4 KiB device write cost (≈ 671 ns in the calibrated model).
    pub device_write_ns: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelfs::Ext4Dax;
    use pmem::PmemBuilder;

    fn fs() -> Arc<dyn FileSystem> {
        let device = PmemBuilder::new(128 * 1024 * 1024)
            .track_persistence(false)
            .build();
        Ext4Dax::mkfs(device).unwrap() as Arc<dyn FileSystem>
    }

    fn small_config() -> IoBenchConfig {
        IoBenchConfig {
            total_bytes: 2 * 1024 * 1024,
            fsync_every: 10,
            path: "/bench.dat".to_string(),
            seed: 3,
        }
    }

    #[test]
    fn every_pattern_runs_and_reports_ops() {
        let fs = fs();
        for pattern in IoPattern::ALL {
            let result = run_pattern(&fs, pattern, &small_config()).unwrap();
            assert_eq!(result.ops, 512, "pattern {pattern:?}");
            assert!(result.elapsed_ns > 0.0);
            assert!(result.kops_per_sec() > 0.0);
        }
    }

    #[test]
    fn random_reads_are_slower_than_sequential() {
        let fs = fs();
        let seq = run_pattern(&fs, IoPattern::SequentialRead, &small_config()).unwrap();
        let rand = run_pattern(&fs, IoPattern::RandomRead, &small_config()).unwrap();
        assert!(
            rand.ns_per_op() > seq.ns_per_op(),
            "random {} vs sequential {}",
            rand.ns_per_op(),
            seq.ns_per_op()
        );
    }

    #[test]
    fn append_overhead_reports_positive_software_cost() {
        let fs = fs();
        let row = append_software_overhead(&fs, 1024 * 1024).unwrap();
        assert!((row.device_write_ns - 671.0).abs() < 10.0);
        assert!(
            row.overhead_ns > 0.0,
            "kernel FS appends must have overhead"
        );
        assert!(row.append_ns > row.device_write_ns);
    }
}
