//! Open-loop ring workload behind `harness -- openloop`.
//!
//! Where [`crate::latency`] is closed-loop (the next request issues
//! only when the previous returns, so concurrency per thread is pinned
//! at one), this workload drives the [`aio`] submission rings with an
//! **open-loop arrival process**: each thread keeps a target number of
//! operations *in flight*, topping the ring back up the moment
//! completions are harvested.  Sweeping the in-flight target (the
//! offered load) exposes the property the rings exist for — the drain
//! path coalesces log fences across everything submitted, so fences
//! per operation *fall* as offered load rises, while the synchronous
//! path pays the same two fences per append no matter the load.
//!
//! Per-operation latency is measured in simulated nanoseconds from
//! submission to harvest, so it includes queueing delay — the honest
//! open-loop number, unlike a closed-loop service time.  Every harvest
//! also checks the durability-epoch invariant: a completion may never
//! carry an epoch the backend has not yet published.
use std::collections::HashMap;
use std::sync::Arc;

use aio::{RingFs, Sqe};
use parking_lot::Mutex;
use vfs::{FileSystem, FsError, FsResult, OpenFlags};

/// Parameters of one open-loop sweep.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Submitting threads; each owns one file and one ring.
    pub threads: usize,
    /// The offered-load sweep: target operations in flight per thread.
    pub inflight_levels: Vec<usize>,
    /// Appends per thread at each level.
    pub ops_per_level: u64,
    /// Payload bytes per appended record.
    pub record_size: usize,
    /// Submission-ring depth (must cover the largest in-flight level).
    pub ring_depth: usize,
    /// Directory holding the per-thread files.
    pub dir: String,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            inflight_levels: vec![1, 4, 16],
            ops_per_level: 256,
            record_size: 1008,
            ring_depth: 64,
            dir: "/openloop".to_string(),
        }
    }
}

/// One offered-load level of the sweep.
#[derive(Debug, Clone)]
pub struct OpenLoopLevel {
    /// Target operations in flight per thread.
    pub inflight: usize,
    /// Completions harvested (should equal `threads * ops_per_level`).
    pub completions: u64,
    /// Median submit-to-harvest latency, simulated nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency.
    pub p99_ns: u64,
    /// 99.9th-percentile latency.
    pub p999_ns: u64,
    /// Completions whose epoch exceeded the published epoch at harvest
    /// time (the durability invariant: must be zero).
    pub epoch_violations: u64,
    /// Completions that carried an error result.
    pub errors: u64,
    /// Device fences issued during the level (from the stats delta).
    pub fences: u64,
}

impl OpenLoopLevel {
    /// Fences per completed operation at this level.
    pub fn fences_per_op(&self) -> f64 {
        if self.completions == 0 {
            return 0.0;
        }
        self.fences as f64 / self.completions as f64
    }
}

/// The outcome of one open-loop sweep.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// One entry per offered-load level, in sweep order.
    pub levels: Vec<OpenLoopLevel>,
    /// Total simulated nanoseconds for the whole sweep.
    pub elapsed_ns: f64,
}

fn percentile(sorted: &[f64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as u64
}

/// Runs the sweep: for each in-flight level, every thread keeps that
/// many appends outstanding on its ring until `ops_per_level` have
/// completed, harvesting latencies and checking the epoch invariant as
/// it goes.  `hub` must be a ring hub whose backend executes against
/// `fs` (e.g. [`splitfs::ring_hub`], or [`aio::RingFs::new`] for the
/// synchronous fallback backend).
pub fn run(
    fs: &Arc<dyn FileSystem>,
    hub: &Arc<RingFs>,
    config: &OpenLoopConfig,
) -> FsResult<OpenLoopReport> {
    if config.threads == 0 || config.ops_per_level == 0 || config.inflight_levels.is_empty() {
        return Err(FsError::InvalidArgument);
    }
    if config
        .inflight_levels
        .iter()
        .any(|&l| l == 0 || l > config.ring_depth)
    {
        return Err(FsError::InvalidArgument);
    }
    let device = Arc::clone(fs.device());
    if !fs.exists(&config.dir) {
        fs.mkdir(&config.dir)?;
    }
    let mut fds = Vec::with_capacity(config.threads);
    for t in 0..config.threads {
        fds.push(fs.open(&format!("{}/ol-{t}.log", config.dir), OpenFlags::create())?);
    }
    let start_sim = device.clock().now_ns_f64();
    let mut levels = Vec::with_capacity(config.inflight_levels.len());
    for &inflight in &config.inflight_levels {
        let before = device.stats().snapshot();
        let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
        let violations: Mutex<u64> = Mutex::new(0);
        let errors: Mutex<u64> = Mutex::new(0);
        std::thread::scope(|scope| {
            for (t, fd) in fds.iter().enumerate() {
                let (hub, config) = (Arc::clone(hub), config.clone());
                let device = Arc::clone(&device);
                let (latencies, violations, errors) = (&latencies, &violations, &errors);
                let fd = *fd;
                scope.spawn(move || {
                    let ring = hub.ring(config.ring_depth);
                    let mut submit_ns: HashMap<u64, f64> = HashMap::new();
                    let mut lats = Vec::with_capacity(config.ops_per_level as usize);
                    let (mut viol, mut errs) = (0u64, 0u64);
                    let mut cqes = Vec::new();
                    let mut submitted = 0u64;
                    let mut completed = 0u64;
                    while completed < config.ops_per_level {
                        // Top the ring up to the offered-load target.
                        while submitted < config.ops_per_level
                            && submitted - completed < inflight as u64
                        {
                            let body = vec![(t as u8).wrapping_add(1); config.record_size];
                            let now = device.clock().now_ns_f64();
                            match ring.try_submit(Sqe::appendv(submitted, fd, vec![body])) {
                                Ok(()) => {
                                    submit_ns.insert(submitted, now);
                                    submitted += 1;
                                }
                                Err(_) => break, // ring full: harvest first
                            }
                        }
                        hub.drain(aio::DEFAULT_DRAIN_BATCH);
                        cqes.clear();
                        ring.harvest(&mut cqes);
                        if cqes.is_empty() {
                            // Another thread (or the daemon) holds the
                            // drain; our completions are on their way.
                            std::thread::yield_now();
                            continue;
                        }
                        let published = hub.published_epoch();
                        let now = device.clock().now_ns_f64();
                        for cqe in &cqes {
                            if let Some(t0) = submit_ns.remove(&cqe.user_data) {
                                lats.push((now - t0).max(1.0));
                            }
                            if cqe.epoch > published {
                                viol += 1;
                            }
                            if cqe.result.is_err() {
                                errs += 1;
                            }
                            completed += 1;
                        }
                    }
                    latencies.lock().extend(lats);
                    *violations.lock() += viol;
                    *errors.lock() += errs;
                });
            }
        });
        let mut lats = latencies.into_inner();
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let delta = device.stats().snapshot().delta(&before);
        levels.push(OpenLoopLevel {
            inflight,
            completions: lats.len() as u64,
            p50_ns: percentile(&lats, 0.50),
            p99_ns: percentile(&lats, 0.99),
            p999_ns: percentile(&lats, 0.999),
            epoch_violations: violations.into_inner(),
            errors: errors.into_inner(),
            fences: delta.fences,
        });
    }
    fs.fsync_many(&fds)?;
    for fd in fds {
        fs.close(fd)?;
    }
    Ok(OpenLoopReport {
        levels,
        elapsed_ns: device.clock().now_ns_f64() - start_sim,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict_splitfs() -> Arc<splitfs::SplitFs> {
        let device = pmem::PmemBuilder::new(256 * 1024 * 1024)
            .track_persistence(false)
            .build();
        let kernel = kernelfs::Ext4Dax::mkfs(device).unwrap();
        let config = splitfs::SplitConfig::new(splitfs::Mode::Strict)
            .with_staging(4, 8 * 1024 * 1024)
            .with_oplog_size(512 * 1024);
        splitfs::SplitFs::new(kernel, config).unwrap()
    }

    #[test]
    fn sweep_completes_every_op_with_zero_epoch_violations() {
        let fs = strict_splitfs();
        let hub = splitfs::ring_hub(&fs);
        let dynfs: Arc<dyn FileSystem> = fs.clone();
        let config = OpenLoopConfig {
            threads: 2,
            inflight_levels: vec![1, 8],
            ops_per_level: 128,
            record_size: 256,
            ring_depth: 32,
            dir: "/ol-test".to_string(),
        };
        let report = run(&dynfs, &hub, &config).unwrap();
        assert_eq!(report.levels.len(), 2);
        for level in &report.levels {
            assert_eq!(level.completions, 2 * 128);
            assert_eq!(level.epoch_violations, 0);
            assert_eq!(level.errors, 0);
            assert!(level.p50_ns > 0);
            assert!(level.p99_ns >= level.p50_ns);
            assert!(level.p999_ns >= level.p99_ns);
            assert!(level.fences > 0);
        }
        // The whole point: deeper offered load amortizes fences.
        assert!(
            report.levels[1].fences_per_op() < report.levels[0].fences_per_op(),
            "fences/op did not fall with offered load: {:?}",
            report
                .levels
                .iter()
                .map(|l| l.fences_per_op())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn openloop_rejects_bad_configs() {
        let fs = strict_splitfs();
        let hub = splitfs::ring_hub(&fs);
        let dynfs: Arc<dyn FileSystem> = fs;
        for config in [
            OpenLoopConfig {
                threads: 0,
                ..OpenLoopConfig::default()
            },
            OpenLoopConfig {
                inflight_levels: vec![],
                ..OpenLoopConfig::default()
            },
            OpenLoopConfig {
                inflight_levels: vec![128],
                ring_depth: 16,
                ..OpenLoopConfig::default()
            },
        ] {
            assert!(run(&dynfs, &hub, &config).is_err());
        }
    }
}
