//! Varmail-like system-call latency microbenchmark (paper §5.4, Table 6).
//!
//! The sequence per file, exactly as the paper describes it: create a file,
//! append 16 KiB as four 4 KiB appends each followed by `fsync`, close it,
//! open it again, read the whole file with one read call, close, open and
//! close once more, and finally delete it.  The harness repeats this for
//! many files and reports the mean simulated latency of each system call.

use std::collections::HashMap;
use std::sync::Arc;

use vfs::{FileSystem, FsResult, OpenFlags};

/// Mean latency (simulated microseconds) per system call type.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SyscallLatencies {
    /// Mean `open` latency in microseconds.
    pub open_us: f64,
    /// Mean `close` latency in microseconds.
    pub close_us: f64,
    /// Mean 4 KiB append latency in microseconds.
    pub append_us: f64,
    /// Mean `fsync` latency in microseconds.
    pub fsync_us: f64,
    /// Mean 16 KiB read latency in microseconds.
    pub read_us: f64,
    /// Mean `unlink` latency in microseconds.
    pub unlink_us: f64,
    /// Full-path lookup cache hit rate over the run (hits divided by all
    /// resolves), the extra column Table 6 gains from the sharded
    /// namespace: the second and third open of each file and its unlink
    /// resolve in one hash probe instead of a component walk.
    pub cache_hit_rate: f64,
}

impl SyscallLatencies {
    /// Table-6 row ordering: open, close, append, fsync, read, unlink.
    pub fn as_rows(&self) -> [(&'static str, f64); 6] {
        [
            ("open", self.open_us),
            ("close", self.close_us),
            ("append", self.append_us),
            ("fsync", self.fsync_us),
            ("read", self.read_us),
            ("unlink", self.unlink_us),
        ]
    }
}

/// Runs the Varmail-like sequence over `iterations` files and returns the
/// mean per-call latencies.
pub fn run(fs: &Arc<dyn FileSystem>, iterations: u64) -> FsResult<SyscallLatencies> {
    let device = Arc::clone(fs.device());
    let clock = Arc::clone(device.clock());
    let stats_before = device.stats().snapshot();
    let mut sums: HashMap<&'static str, f64> = HashMap::new();
    let mut counts: HashMap<&'static str, u64> = HashMap::new();

    let timed = |name: &'static str,
                 sums: &mut HashMap<&'static str, f64>,
                 counts: &mut HashMap<&'static str, u64>,
                 f: &mut dyn FnMut() -> FsResult<()>|
     -> FsResult<()> {
        let start = clock.now_ns_f64();
        f()?;
        let elapsed = clock.now_ns_f64() - start;
        *sums.entry(name).or_default() += elapsed;
        *counts.entry(name).or_default() += 1;
        Ok(())
    };

    let append_block = vec![0xA5u8; 4096];
    for i in 0..iterations {
        let path = format!("/varmail-{i}.mail");
        let mut fd = 0;
        timed("open", &mut sums, &mut counts, &mut || {
            fd = fs.open(&path, OpenFlags::create())?;
            Ok(())
        })?;
        for _ in 0..4 {
            timed("append", &mut sums, &mut counts, &mut || {
                fs.append(fd, &append_block)?;
                Ok(())
            })?;
            timed("fsync", &mut sums, &mut counts, &mut || fs.fsync(fd))?;
        }
        timed("close", &mut sums, &mut counts, &mut || fs.close(fd))?;

        timed("open", &mut sums, &mut counts, &mut || {
            fd = fs.open(&path, OpenFlags::read_write())?;
            Ok(())
        })?;
        let mut buf = vec![0u8; 16 * 1024];
        timed("read", &mut sums, &mut counts, &mut || {
            fs.read_at(fd, 0, &mut buf)?;
            Ok(())
        })?;
        timed("close", &mut sums, &mut counts, &mut || fs.close(fd))?;

        timed("open", &mut sums, &mut counts, &mut || {
            fd = fs.open(&path, OpenFlags::read_only())?;
            Ok(())
        })?;
        timed("close", &mut sums, &mut counts, &mut || fs.close(fd))?;

        timed("unlink", &mut sums, &mut counts, &mut || fs.unlink(&path))?;
    }

    let mean_us = |name: &str| -> f64 {
        let sum = sums.get(name).copied().unwrap_or(0.0);
        let count = counts.get(name).copied().unwrap_or(1).max(1);
        sum / count as f64 / 1000.0
    };
    let delta = device.stats().snapshot().delta(&stats_before);
    let resolves = delta.path_cache_hits + delta.path_cache_misses;
    Ok(SyscallLatencies {
        open_us: mean_us("open"),
        close_us: mean_us("close"),
        append_us: mean_us("append"),
        fsync_us: mean_us("fsync"),
        read_us: mean_us("read"),
        unlink_us: mean_us("unlink"),
        cache_hit_rate: if resolves == 0 {
            0.0
        } else {
            delta.path_cache_hits as f64 / resolves as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelfs::Ext4Dax;
    use pmem::PmemBuilder;

    #[test]
    fn varmail_reports_latency_for_every_call_type() {
        let device = PmemBuilder::new(128 * 1024 * 1024)
            .track_persistence(false)
            .build();
        let fs = Ext4Dax::mkfs(device).unwrap() as Arc<dyn FileSystem>;
        let lat = run(&fs, 5).unwrap();
        for (name, us) in lat.as_rows() {
            assert!(us > 0.0, "{name} latency must be positive");
        }
        // Appends on a kernel file system are far more expensive than reads
        // of already-written data, as in Table 6's ext4 DAX column.
        assert!(lat.append_us > lat.read_us / 4.0);
    }

    #[test]
    fn second_open_of_each_file_is_a_path_cache_hit() {
        let device = PmemBuilder::new(128 * 1024 * 1024)
            .track_persistence(false)
            .build();
        let fs = Ext4Dax::mkfs(Arc::clone(&device)).unwrap() as Arc<dyn FileSystem>;
        const ITERS: u64 = 20;
        let before = device.stats().snapshot();
        let lat = run(&fs, ITERS).unwrap();
        let delta = device.stats().snapshot().delta(&before);
        // Per file: the creating open misses (fresh path) and fills; the
        // second and third open plus the unlink's resolve are hash-probe
        // hits.  At minimum the two re-opens must hit.
        assert!(
            delta.path_cache_hits >= 2 * ITERS,
            "expected >= {} path-cache hits (two re-opens per file), got {}",
            2 * ITERS,
            delta.path_cache_hits
        );
        assert!(
            delta.path_cache_misses <= 2 * ITERS,
            "each file should miss at most on create (+ slack), got {} misses",
            delta.path_cache_misses
        );
        assert!(
            lat.cache_hit_rate > 0.5,
            "varmail re-resolves each path at least three times after the \
             creating miss; hit rate was {}",
            lat.cache_hit_rate
        );
    }
}
