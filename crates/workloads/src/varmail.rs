//! Varmail-like system-call latency microbenchmark (paper §5.4, Table 6).
//!
//! The sequence per file, exactly as the paper describes it: create a file,
//! append 16 KiB as four 4 KiB appends each followed by `fsync`, close it,
//! open it again, read the whole file with one read call, close, open and
//! close once more, and finally delete it.  The harness repeats this for
//! many files and reports the mean simulated latency of each system call.

use std::collections::HashMap;
use std::sync::Arc;

use vfs::{FileSystem, FsResult, OpenFlags};

/// Mean latency (simulated microseconds) per system call type.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SyscallLatencies {
    /// Mean `open` latency in microseconds.
    pub open_us: f64,
    /// Mean `close` latency in microseconds.
    pub close_us: f64,
    /// Mean 4 KiB append latency in microseconds.
    pub append_us: f64,
    /// Mean `fsync` latency in microseconds.
    pub fsync_us: f64,
    /// Mean 16 KiB read latency in microseconds.
    pub read_us: f64,
    /// Mean `unlink` latency in microseconds.
    pub unlink_us: f64,
}

impl SyscallLatencies {
    /// Table-6 row ordering: open, close, append, fsync, read, unlink.
    pub fn as_rows(&self) -> [(&'static str, f64); 6] {
        [
            ("open", self.open_us),
            ("close", self.close_us),
            ("append", self.append_us),
            ("fsync", self.fsync_us),
            ("read", self.read_us),
            ("unlink", self.unlink_us),
        ]
    }
}

/// Runs the Varmail-like sequence over `iterations` files and returns the
/// mean per-call latencies.
pub fn run(fs: &Arc<dyn FileSystem>, iterations: u64) -> FsResult<SyscallLatencies> {
    let device = Arc::clone(fs.device());
    let clock = Arc::clone(device.clock());
    let mut sums: HashMap<&'static str, f64> = HashMap::new();
    let mut counts: HashMap<&'static str, u64> = HashMap::new();

    let timed = |name: &'static str,
                 sums: &mut HashMap<&'static str, f64>,
                 counts: &mut HashMap<&'static str, u64>,
                 f: &mut dyn FnMut() -> FsResult<()>|
     -> FsResult<()> {
        let start = clock.now_ns_f64();
        f()?;
        let elapsed = clock.now_ns_f64() - start;
        *sums.entry(name).or_default() += elapsed;
        *counts.entry(name).or_default() += 1;
        Ok(())
    };

    let append_block = vec![0xA5u8; 4096];
    for i in 0..iterations {
        let path = format!("/varmail-{i}.mail");
        let mut fd = 0;
        timed("open", &mut sums, &mut counts, &mut || {
            fd = fs.open(&path, OpenFlags::create())?;
            Ok(())
        })?;
        for _ in 0..4 {
            timed("append", &mut sums, &mut counts, &mut || {
                fs.append(fd, &append_block)?;
                Ok(())
            })?;
            timed("fsync", &mut sums, &mut counts, &mut || fs.fsync(fd))?;
        }
        timed("close", &mut sums, &mut counts, &mut || fs.close(fd))?;

        timed("open", &mut sums, &mut counts, &mut || {
            fd = fs.open(&path, OpenFlags::read_write())?;
            Ok(())
        })?;
        let mut buf = vec![0u8; 16 * 1024];
        timed("read", &mut sums, &mut counts, &mut || {
            fs.read_at(fd, 0, &mut buf)?;
            Ok(())
        })?;
        timed("close", &mut sums, &mut counts, &mut || fs.close(fd))?;

        timed("open", &mut sums, &mut counts, &mut || {
            fd = fs.open(&path, OpenFlags::read_only())?;
            Ok(())
        })?;
        timed("close", &mut sums, &mut counts, &mut || fs.close(fd))?;

        timed("unlink", &mut sums, &mut counts, &mut || fs.unlink(&path))?;
    }

    let mean_us = |name: &str| -> f64 {
        let sum = sums.get(name).copied().unwrap_or(0.0);
        let count = counts.get(name).copied().unwrap_or(1).max(1);
        sum / count as f64 / 1000.0
    };
    Ok(SyscallLatencies {
        open_us: mean_us("open"),
        close_us: mean_us("close"),
        append_us: mean_us("append"),
        fsync_us: mean_us("fsync"),
        read_us: mean_us("read"),
        unlink_us: mean_us("unlink"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelfs::Ext4Dax;
    use pmem::PmemBuilder;

    #[test]
    fn varmail_reports_latency_for_every_call_type() {
        let device = PmemBuilder::new(128 * 1024 * 1024)
            .track_persistence(false)
            .build();
        let fs = Ext4Dax::mkfs(device).unwrap() as Arc<dyn FileSystem>;
        let lat = run(&fs, 5).unwrap();
        for (name, us) in lat.as_rows() {
            assert!(us > 0.0, "{name} latency must be positive");
        }
        // Appends on a kernel file system are far more expensive than reads
        // of already-written data, as in Table 6's ext4 DAX column.
        assert!(lat.append_us > lat.read_us / 4.0);
    }
}
