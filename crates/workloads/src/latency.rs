//! Closed-loop latency workload behind `harness -- latency`.
//!
//! `threads` worker threads each own one log file and drive a mixed
//! closed-loop request stream — vectored appends, periodic overwrites
//! at the file head, periodic zero-copy read-backs, group-commit
//! `fsync`s — with *no think time*: the next request issues the moment
//! the previous one returns, so the per-op simulated latency
//! distribution is exactly the service-time distribution of the file
//! system under that concurrency.
//!
//! Unlike the throughput workloads this one exists to feed the span
//! recorder: the caller wraps the file system in [`vfs::TracedFs`]
//! before handing it in, and everything the workload does — including
//! file creation, the directory setup and the final `fsync_many` /
//! closes — happens inside the traced window, so the recorder's
//! per-op time breakdown reconciles against the device's aggregate
//! stats for the same window.

use std::sync::Arc;

use parking_lot::Mutex;
use pmem::SimClock;
use vfs::{FileSystem, FsError, FsResult, IoVec, OpenFlags};

/// Parameters of one closed-loop latency run.
#[derive(Debug, Clone)]
pub struct LatencyConfig {
    /// Worker threads; each owns one file.
    pub threads: usize,
    /// Closed-loop append operations per thread.
    pub ops_per_thread: u64,
    /// Payload bytes per appended record (a 16-byte header is added).
    pub record_size: usize,
    /// `fsync` after this many appends (0 = only at the end).
    pub fsync_every: u64,
    /// Zero-copy read-back of one record after this many appends
    /// (0 = never).
    pub read_every: u64,
    /// Overwrite of the first record after this many appends
    /// (0 = never).
    pub write_every: u64,
    /// Directory holding the per-thread files.
    pub dir: String,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            ops_per_thread: 1024,
            record_size: 1008,
            fsync_every: 64,
            read_every: 32,
            write_every: 128,
            dir: "/latency".to_string(),
        }
    }
}

/// The outcome of one latency run (the latency distributions live in
/// the recorder the caller attached, not here).
#[derive(Debug, Clone)]
pub struct LatencyResult {
    /// Worker threads used.
    pub threads: usize,
    /// Total operations issued across all threads (appends plus the
    /// interleaved reads, overwrites and fsyncs).
    pub ops: u64,
    /// Total appends across all threads.
    pub appends: u64,
    /// Critical-path simulated nanoseconds: the maximum over workers of
    /// their own thread time.
    pub critical_ns: f64,
    /// Total simulated nanoseconds (global clock delta; the serial sum).
    pub elapsed_ns: f64,
}

fn record(thread: usize, index: u64, payload: usize) -> (Vec<u8>, Vec<u8>) {
    let mut header = vec![0u8; 16];
    header[0..8].copy_from_slice(&(thread as u64).to_le_bytes());
    header[8..16].copy_from_slice(&index.to_le_bytes());
    (header, vec![(thread as u8).wrapping_add(1); payload])
}

/// Runs the closed-loop workload.  Everything — directory creation,
/// opens, the request loop, the final batched durability point and the
/// closes — happens inside this call, so a caller measuring the window
/// around it captures every operation.
pub fn run(fs: &Arc<dyn FileSystem>, config: &LatencyConfig) -> FsResult<LatencyResult> {
    if config.threads == 0 || config.ops_per_thread == 0 {
        return Err(FsError::InvalidArgument);
    }
    let device = Arc::clone(fs.device());
    if !fs.exists(&config.dir) {
        fs.mkdir(&config.dir)?;
    }
    let start_sim = device.clock().now_ns_f64();
    let record_len = (16 + config.record_size) as u64;
    let thread_times: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(config.threads));
    let ops_total: Mutex<u64> = Mutex::new(0);
    let fds: Mutex<Vec<vfs::Fd>> = Mutex::new(Vec::with_capacity(config.threads));
    std::thread::scope(|scope| {
        for t in 0..config.threads {
            let fs = Arc::clone(fs);
            let config = config.clone();
            let (thread_times, ops_total, fds) = (&thread_times, &ops_total, &fds);
            scope.spawn(move || {
                let t0 = SimClock::thread_time_ns();
                let mut ops = 0u64;
                let fd = fs
                    .open(&format!("{}/lat-{t}.log", config.dir), OpenFlags::create())
                    .expect("latency open");
                ops += 1;
                for i in 0..config.ops_per_thread {
                    let (header, body) = record(t, i, config.record_size);
                    let iov = [IoVec::new(&header), IoVec::new(&body)];
                    fs.appendv(fd, &iov).expect("latency append");
                    ops += 1;
                    if config.read_every > 0 && (i + 1) % config.read_every == 0 {
                        // Read back a record this thread already wrote.
                        let back = (i / 2) * record_len;
                        let view = fs
                            .read_view(fd, back, record_len as usize)
                            .expect("latency read");
                        assert!(!view.as_slice().is_empty(), "read-back hit a hole");
                        ops += 1;
                    }
                    if config.write_every > 0 && (i + 1) % config.write_every == 0 {
                        let (header, body) = record(t, 0, config.record_size);
                        fs.write_at(fd, 0, &header).expect("latency overwrite");
                        fs.write_at(fd, 16, &body).expect("latency overwrite");
                        ops += 2;
                    }
                    if config.fsync_every > 0 && (i + 1) % config.fsync_every == 0 {
                        fs.fsync(fd).expect("latency fsync");
                        ops += 1;
                    }
                }
                thread_times.lock().push(SimClock::thread_time_ns() - t0);
                *ops_total.lock() += ops;
                fds.lock().push(fd);
            });
        }
    });
    // One batched durability point over every file, then close them —
    // still inside the measured window.
    let fds = fds.into_inner();
    fs.fsync_many(&fds)?;
    let mut ops = ops_total.into_inner() + 1;
    for fd in fds {
        fs.close(fd)?;
        ops += 1;
    }
    let critical_ns = thread_times.lock().iter().cloned().fold(0.0f64, f64::max);
    Ok(LatencyResult {
        threads: config.threads,
        ops,
        appends: config.threads as u64 * config.ops_per_thread,
        critical_ns,
        elapsed_ns: device.clock().now_ns_f64() - start_sim,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{MetricsSnapshot, OpKind, Recorder};
    use vfs::TracedFs;

    fn strict_splitfs() -> Arc<splitfs::SplitFs> {
        let device = pmem::PmemBuilder::new(256 * 1024 * 1024)
            .track_persistence(false)
            .build();
        let kernel = kernelfs::Ext4Dax::mkfs(device).unwrap();
        let config = splitfs::SplitConfig::new(splitfs::Mode::Strict)
            .with_staging(4, 8 * 1024 * 1024)
            .with_oplog_size(512 * 1024);
        splitfs::SplitFs::new(kernel, config).unwrap()
    }

    #[test]
    fn traced_run_reconciles_spans_with_aggregate_stats() {
        let fs = strict_splitfs();
        let device = Arc::clone(fs.device());
        let recorder = Arc::new(Recorder::new());
        fs.attach_recorder(Arc::clone(&recorder));
        let traced: Arc<dyn vfs::FileSystem> =
            Arc::new(TracedFs::new(fs.clone(), Arc::clone(&recorder)));
        let before = device.stats().snapshot();
        let config = LatencyConfig {
            threads: 4,
            ops_per_thread: 256,
            record_size: 496,
            ..LatencyConfig::default()
        };
        let result = run(&traced, &config).unwrap();
        fs.maintenance_quiesce();
        let stats = device.stats().snapshot().delta(&before);
        let snap = MetricsSnapshot::new("SplitFS-strict", config.threads, &recorder, stats)
            .with_health(fs.health());

        assert_eq!(result.appends, 4 * 256);
        let appendv = snap.op(OpKind::Appendv).expect("appendv spans recorded");
        assert_eq!(appendv.count, result.appends);
        assert!(appendv.p99_ns >= appendv.p50_ns);
        assert!(snap.op(OpKind::Fsync).is_some());
        assert!(snap.op(OpKind::ReadView).is_some());
        assert!(snap.op(OpKind::Create).is_some());

        // The acceptance criterion: the per-op breakdown sums to within
        // 1% of the aggregate per-category stats for the same window.
        let err = snap.attribution_error(1000.0);
        assert!(
            err < 0.01,
            "span attribution off by {:.3}% (spans {:?} vs stats {:?})",
            err * 100.0,
            snap.span_time_by_category(),
            snap.stats.time_ns
        );
    }

    #[test]
    fn latency_rejects_empty_configs() {
        let fs = strict_splitfs();
        let traced: Arc<dyn vfs::FileSystem> = fs;
        let config = LatencyConfig {
            threads: 0,
            ..LatencyConfig::default()
        };
        assert!(run(&traced, &config).is_err());
    }
}
