//! The declared-durability checker: recovered state vs. promise ledger.
//!
//! Given the [`pmem::PromiseRecord`]s that were in the ledger when a
//! crash image was captured, [`check_promises`] replays them in
//! declaration order into a **latest-wins** expectation per path (and
//! per lease id), then checks the recovered kernel file system against
//! those expectations:
//!
//! * the newest [`pmem::Promise::FileDurable`] per path binds — the file
//!   must exist, be at least the promised length, and its promised
//!   prefix must hash to the promised value;
//! * a [`pmem::Promise::FileRetracted`] withdraws every earlier promise
//!   for the path (content *and* existence), so a crash in the middle
//!   of the voiding rename/unlink checks nothing stale;
//! * the newest [`pmem::Promise::PathDurable`] per path binds existence;
//! * the newest [`pmem::Promise::LeaseJournaled`] per instance binds: a
//!   journaled grant means the lease is active or was just recovered as
//!   an orphan, a journaled release means it is neither.
//!
//! The remaining promise kinds (`fsync_returned`, `epoch_durable`,
//! `relink_committed`, `oplog_committed`) are **counted, not checked**:
//! their binding content obligations are restated as `FileDurable`
//! promises by the workload (which knows the expected bytes), and their
//! internal sequence numbers do not survive log truncation.  The counts
//! still matter — they prove the fuzzer exercised each promise door and
//! feed the differential classifier.
//!
//! [`fsck`] is the promise-free half: a non-panicking port of the
//! namespace scan plus the POSIX metadata walk (every reachable
//! directory entry stats) that the integration tests previously
//! hand-rolled.  Sizes are deliberately *not* compared against
//! allocated blocks: relink transfers extents out of staging files and
//! leaves holes behind, so sparse files are a designed-in state, not
//! corruption.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use kernelfs::Ext4Dax;
use pmem::oracle::content_hash;
use pmem::{Promise, PromiseRecord};
use vfs::FileSystem;

/// The outcome of checking one recovered image against its ledger.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Strictly-checked promises (content, existence, lease) that were
    /// evaluated against the recovered state.
    pub promises_checked: u64,
    /// Tally of every declared promise by [`Promise::kind_label`].
    pub promise_counts: BTreeMap<&'static str, u64>,
    /// Human-readable descriptions of every broken promise.  Empty on a
    /// clean check.
    pub violations: Vec<String>,
}

impl OracleReport {
    /// True when every checked promise held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Latest-wins expectation for one path, built from the ledger.
#[derive(Default)]
struct PathExpectation {
    /// `Some((len, hash))` when a content promise binds.
    content: Option<(u64, u64)>,
    /// `Some(exists)` when an existence promise binds.
    exists: Option<bool>,
}

/// Checks a recovered kernel file system against the promises that were
/// in the ledger at capture time.  `recovered_orphans` lists the
/// instance ids that this mount's orphan recovery replayed (a journaled
/// lease grant is satisfied by either an active lease or a recovered
/// orphan).
pub fn check_promises(
    kernel: &Arc<Ext4Dax>,
    records: &[PromiseRecord],
    recovered_orphans: &[u32],
) -> OracleReport {
    let mut report = OracleReport::default();
    let mut paths: HashMap<&str, PathExpectation> = HashMap::new();
    let mut leases: HashMap<u32, bool> = HashMap::new();
    for rec in records {
        *report
            .promise_counts
            .entry(rec.promise.kind_label())
            .or_insert(0) += 1;
        match &rec.promise {
            Promise::FileDurable { path, len, hash } => {
                paths.entry(path).or_default().content = Some((*len, *hash));
            }
            Promise::FileRetracted { path } => {
                // Withdraw everything: the path is mid-rename/unlink, so
                // neither its content nor its existence is promised.
                paths.insert(path, PathExpectation::default());
            }
            Promise::PathDurable { path, exists } => {
                paths.entry(path).or_default().exists = Some(*exists);
            }
            Promise::LeaseJournaled { instance, acquired } => {
                leases.insert(*instance, *acquired);
            }
            Promise::FsyncReturned { .. }
            | Promise::EpochDurable { .. }
            | Promise::RelinkCommitted { .. }
            | Promise::OplogCommitted { .. } => {}
        }
    }

    for (path, expect) in &paths {
        if let Some(exists) = expect.exists {
            report.promises_checked += 1;
            let found = kernel.exists(path);
            if found != exists {
                report.violations.push(format!(
                    "path promise broken: {path} should {}exist but {}",
                    if exists { "" } else { "not " },
                    if found { "does" } else { "does not" },
                ));
            }
        }
        let Some((len, hash)) = expect.content else {
            continue;
        };
        report.promises_checked += 1;
        let data = match kernel.read_file(path) {
            Ok(data) => data,
            Err(e) => {
                report
                    .violations
                    .push(format!("content promise broken: {path} unreadable: {e}"));
                continue;
            }
        };
        if (data.len() as u64) < len {
            report.violations.push(format!(
                "content promise broken: {path} holds {} bytes, {len} promised durable",
                data.len()
            ));
            continue;
        }
        let got = content_hash(&data[..len as usize]);
        if got != hash {
            report.violations.push(format!(
                "content promise broken: {path} promised prefix of {len} bytes \
                 hashes to {got:#x}, ledger says {hash:#x}"
            ));
        }
    }

    for (instance, acquired) in &leases {
        report.promises_checked += 1;
        let active = kernel.lease_is_active(*instance);
        let recovered = recovered_orphans.contains(instance);
        if *acquired && !(active || recovered) {
            report.violations.push(format!(
                "lease promise broken: journaled grant for instance {instance} \
                 is neither active nor a recovered orphan"
            ));
        }
        if !*acquired && (active || recovered) {
            report.violations.push(format!(
                "lease promise broken: journaled release for instance {instance} \
                 but the lease is {}",
                if active { "still active" } else { "an orphan" },
            ));
        }
    }
    report
}

/// Non-panicking file-system check: the kernel's namespace invariants
/// plus a recursive POSIX metadata walk.  Returns one description per
/// violation; empty means the recovered image is consistent.
pub fn fsck(kernel: &Arc<Ext4Dax>) -> Vec<String> {
    let mut violations = kernel.check_namespace();
    walk(kernel, "/", &mut violations);
    violations
}

fn walk(kernel: &Arc<Ext4Dax>, dir: &str, violations: &mut Vec<String>) {
    let names = match kernel.readdir(dir) {
        Ok(names) => names,
        Err(e) => {
            violations.push(format!("fsck: readdir({dir}) failed: {e}"));
            return;
        }
    };
    for name in names {
        let path = if dir == "/" {
            format!("/{name}")
        } else {
            format!("{dir}/{name}")
        };
        let stat = match kernel.stat(&path) {
            Ok(stat) => stat,
            Err(e) => {
                violations.push(format!("fsck: dangling entry {path}: {e}"));
                continue;
            }
        };
        if stat.is_dir {
            walk(kernel, &path, violations);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemBuilder;

    fn fresh() -> Arc<Ext4Dax> {
        let device = PmemBuilder::new(64 * 1024 * 1024).build();
        Ext4Dax::mkfs(device).unwrap()
    }

    fn rec(seq: u64, promise: Promise) -> PromiseRecord {
        PromiseRecord { seq, promise }
    }

    #[test]
    fn latest_content_promise_binds_and_is_checked() {
        let kernel = fresh();
        kernel.write_file("/a", b"hello world").unwrap();
        let records = vec![
            rec(
                0,
                Promise::FileDurable {
                    path: "/a".into(),
                    len: 5,
                    hash: content_hash(b"stale"),
                },
            ),
            rec(
                1,
                Promise::FileDurable {
                    path: "/a".into(),
                    len: 11,
                    hash: content_hash(b"hello world"),
                },
            ),
        ];
        let report = check_promises(&kernel, &records, &[]);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.promise_counts["file_durable"], 2);
    }

    #[test]
    fn broken_content_and_existence_promises_are_reported() {
        let kernel = fresh();
        kernel.write_file("/a", b"short").unwrap();
        let records = vec![
            rec(
                0,
                Promise::FileDurable {
                    path: "/a".into(),
                    len: 100,
                    hash: 1,
                },
            ),
            rec(
                1,
                Promise::PathDurable {
                    path: "/missing".into(),
                    exists: true,
                },
            ),
        ];
        let report = check_promises(&kernel, &records, &[]);
        assert_eq!(report.violations.len(), 2, "{:?}", report.violations);
    }

    #[test]
    fn retraction_withdraws_earlier_promises() {
        let kernel = fresh();
        let records = vec![
            rec(
                0,
                Promise::FileDurable {
                    path: "/gone".into(),
                    len: 4,
                    hash: 9,
                },
            ),
            rec(
                1,
                Promise::PathDurable {
                    path: "/gone".into(),
                    exists: true,
                },
            ),
            rec(
                2,
                Promise::FileRetracted {
                    path: "/gone".into(),
                },
            ),
        ];
        let report = check_promises(&kernel, &records, &[]);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn lease_promises_accept_active_or_recovered_orphans() {
        let kernel = fresh();
        let records = vec![rec(
            0,
            Promise::LeaseJournaled {
                instance: 3,
                acquired: true,
            },
        )];
        let broken = check_promises(&kernel, &records, &[]);
        assert_eq!(broken.violations.len(), 1);
        let recovered = check_promises(&kernel, &records, &[3]);
        assert!(recovered.is_clean(), "{:?}", recovered.violations);
    }

    #[test]
    fn fsck_passes_on_a_fresh_tree() {
        let kernel = fresh();
        kernel.mkdir("/d").unwrap();
        kernel.write_file("/d/f", &vec![1u8; 9000]).unwrap();
        assert!(fsck(&kernel).is_empty());
    }
}
