//! Crash-point fuzzing and fault injection with a declared-durability
//! oracle.
//!
//! SplitFS hands out durability guarantees through many doors — `fsync`
//! returning, [`aio`]'s `await_epoch` satisfying, a relink batch's
//! journal transaction committing, a lease journal entry landing.  A
//! crash-consistency test that hard-codes one expected post-crash state
//! per scenario cannot keep up with that surface.  This crate inverts
//! the scheme: the workload **declares each promise as it is handed
//! out** (into the device's [`pmem::PromiseLedger`]), the fuzzer crashes
//! the system at systematically enumerated fence boundaries, and a
//! single oracle checks every recovered image against exactly the
//! promises that were outstanding at the crash point.
//!
//! The moving parts:
//!
//! * [`seed`] — `CHAOS_SEED` plumbing: one environment variable reseeds
//!   every fuzz loop and property test in the workspace, and every
//!   failure message prints the seed that reproduces it.
//! * [`oracle`] — the checker: replays the promise ledger's
//!   latest-wins state against a recovered kernel file system, plus a
//!   non-panicking `fsck` (namespace scan + metadata walk).
//! * [`harness`] — the shared post-crash helper the integration tests
//!   mount through: mount, per-instance recovery, oracle + fsck
//!   assertion with an [`obs`] flight-recorder dump on violation.
//! * [`fuzz`] — the engine: pass 1 counts the fence boundaries a
//!   seeded [`workloads::crashmix`] run crosses; pass 2 replays the
//!   workload once per sampled boundary, captures a [`pmem::CrashImage`]
//!   at that exact fence, recovers it and runs the oracle.  A
//!   differential mode crashes the same points under
//!   [`pmem::CrashPolicy::KeepAll`] and `LoseUnflushed` to auto-classify
//!   missing-fence bugs, and a media-fault mode poisons live block
//!   ranges to verify read errors propagate and stay contained.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fuzz;
pub mod harness;
pub mod oracle;
pub mod seed;

pub use fuzz::{DiffReport, FuzzConfig, FuzzReport, MediaFaultReport};
pub use harness::Recovered;
pub use oracle::OracleReport;
pub use seed::chaos_seed;
