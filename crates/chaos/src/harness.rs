//! The shared post-crash helper the integration tests mount through.
//!
//! Before this crate, every crash test hand-rolled its own post-crash
//! block: mount, replay the right logs, walk the tree asserting
//! metadata invariants.  [`Recovered`] centralizes that: one call
//! mounts the crashed device (installing the [`obs`] panic hook so any
//! assertion failure dumps the flight recorder), the `recover_*`
//! methods replay orphaned or explicit instances, and
//! [`Recovered::assert_clean`] / [`Recovered::assert_promises`] run the
//! fsck walk, the foreign-entry containment check and the
//! declared-durability oracle — printing the recent flight-recorder
//! events and emitting an [`obs::SpanEvent::OracleViolation`] before
//! failing, so a violation comes with the event tail that led to it.

use std::sync::Arc;

use kernelfs::Ext4Dax;
use pmem::{PmemDevice, PromiseRecord};
use splitfs::{recover_instance, recover_orphans, RecoveryReport, SplitConfig};
use vfs::FsResult;

use crate::oracle::{self, OracleReport};

/// A mounted post-crash file system plus every recovery report the
/// helper produced on it.
#[derive(Debug)]
pub struct Recovered {
    /// The remounted kernel file system.
    pub kernel: Arc<Ext4Dax>,
    /// Reports from orphan recovery, per recovered instance id.
    pub orphan_reports: Vec<(u32, RecoveryReport)>,
    /// Reports from explicit per-instance replays.
    pub instance_reports: Vec<(u32, RecoveryReport)>,
}

impl Recovered {
    /// Mounts a crashed device and installs the flight-recorder panic
    /// hook, so every later assertion failure dumps the event tail.
    pub fn mount(device: &Arc<PmemDevice>) -> FsResult<Self> {
        obs::install_panic_hook();
        Ok(Self {
            kernel: Ext4Dax::mount(Arc::clone(device))?,
            orphan_reports: Vec::new(),
            instance_reports: Vec::new(),
        })
    }

    /// Wraps an already-mounted kernel — the in-process path, where a
    /// live instance recovers a crashed peer without a remount.
    pub fn attach(kernel: Arc<Ext4Dax>) -> Self {
        obs::install_panic_hook();
        Self {
            kernel,
            orphan_reports: Vec::new(),
            instance_reports: Vec::new(),
        }
    }

    /// Mounts and immediately recovers every orphaned instance — the
    /// normal whole-device crash path.
    pub fn mount_and_recover(device: &Arc<PmemDevice>, config: &SplitConfig) -> FsResult<Self> {
        let mut rec = Self::mount(device)?;
        rec.recover_orphans(config)?;
        Ok(rec)
    }

    /// Replays every orphaned instance's operation log.
    pub fn recover_orphans(&mut self, config: &SplitConfig) -> FsResult<()> {
        self.orphan_reports
            .extend(recover_orphans(&self.kernel, config)?);
        Ok(())
    }

    /// Explicitly replays one instance's operation log (used when the
    /// instance released its lease before the crash, so it is not an
    /// orphan, but its log still holds replayable entries).
    pub fn recover_instance(
        &mut self,
        config: &SplitConfig,
        instance_id: u32,
    ) -> FsResult<&RecoveryReport> {
        let report = recover_instance(&self.kernel, config, instance_id)?;
        self.instance_reports.push((instance_id, report));
        Ok(&self.instance_reports.last().unwrap().1)
    }

    /// The report of the most recent replay of `instance_id`, searching
    /// explicit replays first, then orphan recovery.
    pub fn report(&self, instance_id: u32) -> Option<&RecoveryReport> {
        self.instance_reports
            .iter()
            .rev()
            .chain(self.orphan_reports.iter().rev())
            .find(|(id, _)| *id == instance_id)
            .map(|(_, r)| r)
    }

    /// Instance ids orphan recovery replayed on this mount.
    pub fn recovered_orphan_ids(&self) -> Vec<u32> {
        self.orphan_reports.iter().map(|(id, _)| *id).collect()
    }

    /// Total foreign-tagged entries across every report — the
    /// cross-instance containment guard; nonzero means one instance's
    /// log carried another's entries.
    pub fn foreign_entries(&self) -> usize {
        self.orphan_reports
            .iter()
            .chain(self.instance_reports.iter())
            .map(|(_, r)| r.foreign)
            .sum()
    }

    /// Runs the namespace/metadata fsck on the recovered tree.
    pub fn fsck(&self) -> Vec<String> {
        oracle::fsck(&self.kernel)
    }

    /// Checks the declared-durability oracle against the given ledger
    /// slice (normally `CrashImage::ledger_len` records).
    pub fn check_promises(&self, records: &[PromiseRecord]) -> OracleReport {
        oracle::check_promises(&self.kernel, records, &self.recovered_orphan_ids())
    }

    /// Asserts the recovered image is structurally sound: fsck-clean
    /// and zero foreign entries.  On failure, prints the flight
    /// recorder's recent events and panics.
    pub fn assert_clean(&self) {
        let violations = self.fsck();
        if !violations.is_empty() {
            obs::event(obs::SpanEvent::OracleViolation);
            panic!(
                "post-crash fsck failed:\n  {}\n{}",
                violations.join("\n  "),
                obs::flight::dump()
            );
        }
        let foreign = self.foreign_entries();
        assert_eq!(
            foreign,
            0,
            "foreign log entries crossed an instance boundary\n{}",
            obs::flight::dump()
        );
    }

    /// Asserts [`Recovered::assert_clean`] *and* that every promise in
    /// `records` holds on the recovered tree.
    pub fn assert_promises(&self, records: &[PromiseRecord]) {
        self.assert_clean();
        let report = self.check_promises(records);
        if !report.is_clean() {
            obs::event(obs::SpanEvent::OracleViolation);
            panic!(
                "durability oracle violated ({} promises checked):\n  {}\n{}",
                report.promises_checked,
                report.violations.join("\n  "),
                obs::flight::dump()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{PmemBuilder, Promise};
    use splitfs::{Mode, SplitFs};
    use vfs::{FileSystem, OpenFlags};

    fn config() -> SplitConfig {
        SplitConfig::new(Mode::Strict)
            .with_staging(2, 2 * 1024 * 1024)
            .with_oplog_size(128 * 1024)
            .without_daemon()
    }

    #[test]
    fn mount_and_recover_replays_an_orphan_and_checks_promises() {
        let device = PmemBuilder::new(96 * 1024 * 1024)
            .track_persistence(true)
            .build();
        let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
        let fs = SplitFs::new(kernel, config()).unwrap();
        device.ledger().set_enabled(true);

        let fd = fs.open("/x", OpenFlags::create()).unwrap();
        let payload = vec![0x5Au8; 10_000];
        fs.append(fd, &payload).unwrap();
        fs.fsync(fd).unwrap();
        device.declare(Promise::FileDurable {
            path: "/x".into(),
            len: payload.len() as u64,
            hash: pmem::content_hash(&payload),
        });
        let ledger_len = device.ledger().len();
        fs.abandon_lease_on_drop();
        drop(fs);
        device.crash();

        let rec = Recovered::mount_and_recover(&device, &config()).unwrap();
        assert_eq!(rec.recovered_orphan_ids(), vec![0]);
        assert!(rec.report(0).is_some());
        rec.assert_promises(&device.ledger().records_up_to(ledger_len));
    }

    #[test]
    #[should_panic(expected = "durability oracle violated")]
    fn broken_promises_panic_with_a_flight_dump() {
        let device = PmemBuilder::new(64 * 1024 * 1024).build();
        Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
        let rec = Recovered::mount(&device).unwrap();
        rec.assert_promises(&[PromiseRecord {
            seq: 0,
            promise: Promise::PathDurable {
                path: "/never-created".into(),
                exists: true,
            },
        }]);
    }
}
