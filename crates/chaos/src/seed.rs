//! `CHAOS_SEED` — one knob that reseeds every randomized test.
//!
//! Every fuzz loop and property test in the workspace derives its
//! randomness from a deterministic per-test seed.  Setting the
//! `CHAOS_SEED` environment variable perturbs all of them at once
//! (nightly runs sweep it), and every failure report prints the value
//! that reproduces the failing schedule:
//!
//! ```text
//! CHAOS_SEED=0x1d4c9f23 cargo test -p chaos
//! ```
//!
//! Accepted forms: decimal (`12345`) or hexadecimal with a `0x` prefix.

/// The environment variable consulted by [`chaos_seed`].
pub const CHAOS_SEED_ENV: &str = "CHAOS_SEED";

/// Parses a `CHAOS_SEED`-style value: decimal, or hex with `0x`/`0X`.
pub fn parse_seed(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

/// Returns the seed every randomized entry point should start from:
/// the `CHAOS_SEED` environment variable if set (and parseable), else
/// `default`.  An unparseable value falls back to `default` rather than
/// aborting, so a typo degrades to a deterministic run.
pub fn chaos_seed(default: u64) -> u64 {
    std::env::var(CHAOS_SEED_ENV)
        .ok()
        .and_then(|raw| parse_seed(&raw))
        .unwrap_or(default)
}

/// The line a failing fuzz/property run prints so the schedule can be
/// replayed: `CHAOS_SEED=0x<seed>`.
pub fn replay_banner(seed: u64) -> String {
    format!("{CHAOS_SEED_ENV}=0x{seed:x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_decimal_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed(" 0xff "), Some(255));
        assert_eq!(parse_seed("0XDEADBEEF"), Some(0xDEAD_BEEF));
        assert_eq!(parse_seed("zebra"), None);
        assert_eq!(parse_seed("0x"), None);
    }

    #[test]
    fn banner_round_trips() {
        let banner = replay_banner(0x1d4c);
        let value = banner.split('=').nth(1).unwrap();
        assert_eq!(parse_seed(value), Some(0x1d4c));
    }
}
