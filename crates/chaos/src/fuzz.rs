//! The crash-point fuzzing engine.
//!
//! Pass 1 ([`enumerate_fences`]) runs the seeded
//! [`workloads::crashmix`] workload once and counts the fence
//! boundaries it crosses.  Pass 2 ([`run`]) replays the same workload
//! once per sampled boundary with a [`pmem::FenceHook`] armed: when the
//! target fence ordinal fires, the hook captures a
//! [`pmem::CrashImage`] — ledger length first, shard bytes second — and
//! the run continues undisturbed.  The image is then restored into a
//! fresh device, mounted, recovered ([`crate::harness::Recovered`]),
//! and checked against exactly the promises that were in the ledger at
//! capture time, plus the fsck walk and the foreign-entry containment
//! guard.
//!
//! Fence counts are *mostly* deterministic but can drift by a few
//! ordinals across replays (lane stealing between concurrent workers
//! reorders who fences), so the sampler only targets ordinals below
//! 90% of the enumerated count and a replay whose target never fires
//! is reported as `points_unreached` rather than an error.
//!
//! [`run_differential`] crashes the same points under
//! [`pmem::CrashPolicy::KeepAll`] and `LoseUnflushed` and classifies
//! each divergence: a violation only under `LoseUnflushed` is a
//! missing flush/fence, a violation under both is a logic bug, and a
//! violation only under `KeepAll` is unclassifiable (and should never
//! happen — losing *less* state cannot hurt a correct system).
//!
//! [`run_media_faults`] covers the non-crash fault axis: it poisons
//! byte ranges of a durable file's blocks and verifies the read error
//! propagates to the application as `EIO`, neighboring files stay
//! readable, and clearing the poison restores the data intact.

use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use kernelfs::Ext4Dax;
use parking_lot::Mutex;
use pmem::{CrashImage, CrashPolicy, PmemBuilder, PmemDevice, PromiseRecord};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use splitfs::{Mode, SplitConfig, SplitFs};
use vfs::{FileSystem, FsError, FsResult, OpenFlags};
use workloads::crashmix::{self, CrashMixConfig};

use crate::harness::Recovered;

/// Parameters of one fuzzing campaign (one mode, one crash policy).
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Base seed: drives the workload and the boundary sampler.
    pub seed: u64,
    /// SplitFS mode under test.
    pub mode: Mode,
    /// What happens to unfenced lines at the crash point.
    pub policy: CrashPolicy,
    /// Maximum crash points to explore (sampled evenly across the
    /// enumerated boundaries when there are more).
    pub max_points: usize,
    /// The workload replayed for every point.
    pub workload: CrashMixConfig,
    /// Device size for each trial.
    pub device_size: usize,
    /// When set, format only this many bytes as PM and the rest of the
    /// device as a capacity tier — migration-path crash points require a
    /// tiered layout.  `None` formats the whole device flat.
    pub pm_bytes: Option<usize>,
}

impl FuzzConfig {
    /// The bounded smoke-gate profile: a small concurrent workload,
    /// sized so one mode explores 100+ points in seconds.
    pub fn smoke(mode: Mode, seed: u64) -> Self {
        Self {
            seed,
            mode,
            policy: CrashPolicy::LoseUnflushed,
            max_points: 100,
            workload: CrashMixConfig {
                seed,
                threads: 2,
                files_per_thread: 2,
                ops_per_thread: 24,
                use_rings: false,
                tier_churn: false,
                dir: "/chaos".to_string(),
            },
            device_size: 64 * 1024 * 1024,
            pm_bytes: None,
        }
    }

    /// The smoke profile on a tiered device with tier churn enabled:
    /// the workload fsyncs-then-demotes files as it runs, so sampled
    /// crash points land before, during and after segment migrations.
    pub fn tiered_smoke(mode: Mode, seed: u64) -> Self {
        let mut config = Self::smoke(mode, seed);
        config.pm_bytes = Some(48 * 1024 * 1024);
        config.workload.tier_churn = true;
        config
    }
}

/// The outcome of one fuzzing campaign.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Fence boundaries the enumeration pass counted.
    pub fences_enumerated: u64,
    /// Crash points captured, recovered and checked.
    pub points_explored: u64,
    /// Sampled ordinals whose fence never fired on the replay (fence
    /// count drift under concurrency).
    pub points_unreached: u64,
    /// Every oracle violation, prefixed with the crash ordinal.
    pub violations: Vec<String>,
    /// Recovered images that failed the fsck walk (or failed to mount).
    pub fsck_failures: u64,
    /// Strictly-checked promises across all points.
    pub promises_checked: u64,
    /// Declared promises by kind across all points.
    pub promise_counts: BTreeMap<&'static str, u64>,
}

/// The split configuration every trial uses: small staging/oplog so the
/// workload crosses relink and group-commit boundaries quickly, daemon
/// off so the only concurrency is the workload's own threads.
fn split_config(mode: Mode) -> SplitConfig {
    SplitConfig::new(mode)
        .with_staging(4, 2 * 1024 * 1024)
        .with_oplog_size(256 * 1024)
        .without_daemon()
}

/// Builds a fresh device + instance for one trial.  The ledger is
/// enabled before `SplitFs::new` so the instance's lease grant is the
/// first recorded promise.
fn build(config: &FuzzConfig) -> FsResult<(Arc<PmemDevice>, Arc<SplitFs>)> {
    let device = PmemBuilder::new(config.device_size)
        .track_persistence(true)
        .crash_policy(config.policy)
        .build();
    device.ledger().set_enabled(true);
    let kernel = match config.pm_bytes {
        Some(pm) => Ext4Dax::mkfs_shaped(Arc::clone(&device), pm)?,
        None => Ext4Dax::mkfs(Arc::clone(&device))?,
    };
    let fs = SplitFs::new(kernel, split_config(config.mode))?;
    Ok((device, fs))
}

/// Pass 1: runs the workload once and returns `(setup_fences,
/// total_fences)` — the fence ordinal at which setup (mkfs + instance
/// start) finished, and the ordinal count when the workload completed.
/// Crash points are sampled from the span in between.
pub fn enumerate_fences(config: &FuzzConfig) -> FsResult<(u64, u64)> {
    let (device, fs) = build(config)?;
    let setup = device.fence_ordinal();
    crashmix::run(&fs, &config.workload)?;
    drop(fs);
    Ok((setup, device.fence_ordinal()))
}

/// Pass 2, one point: replays the workload with the hook armed at
/// `target`, returning the captured image and the ledger slice that
/// was established before it — or `None` when the replay never reached
/// the target ordinal.
fn capture_at(
    config: &FuzzConfig,
    target: u64,
) -> FsResult<Option<(CrashImage, Vec<PromiseRecord>)>> {
    let (device, fs) = build(config)?;
    let slot: Arc<Mutex<Option<CrashImage>>> = Arc::new(Mutex::new(None));
    let hook_slot = Arc::clone(&slot);
    device.set_fence_hook(Some(Arc::new(move |dev: &PmemDevice, ordinal: u64| {
        if ordinal == target {
            let mut slot = hook_slot.lock();
            if slot.is_none() {
                obs::event(obs::SpanEvent::CrashCapture);
                *slot = Some(dev.capture_crash_image());
            }
        }
    })));
    crashmix::run(&fs, &config.workload)?;
    drop(fs);
    device.set_fence_hook(None);
    let image = slot.lock().take();
    Ok(image.map(|image| {
        let records = device.ledger().records_up_to(image.ledger_len());
        (image, records)
    }))
}

/// What recovering one captured image produced.
struct PointOutcome {
    violations: Vec<String>,
    fsck_failed: bool,
    promises_checked: u64,
    promise_counts: BTreeMap<&'static str, u64>,
}

/// Restores a captured image into a fresh device, mounts + recovers
/// it, and runs fsck plus the promise oracle.  A recovery panic is a
/// violation, not a test-harness crash.
fn recover_point(
    config: &FuzzConfig,
    image: &CrashImage,
    records: &[PromiseRecord],
) -> PointOutcome {
    let device = PmemBuilder::new(config.device_size)
        .track_persistence(true)
        .build();
    device.restore_crash_image(image);
    let split = split_config(config.mode);
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let rec = Recovered::mount_and_recover(&device, &split)?;
        let fsck = rec.fsck();
        let mut oracle = rec.check_promises(records);
        if rec.foreign_entries() > 0 {
            oracle.violations.push(format!(
                "containment broken: {} foreign log entries replayed",
                rec.foreign_entries()
            ));
        }
        Ok::<_, FsError>((fsck, oracle))
    }));
    match result {
        Ok(Ok((fsck, oracle))) => PointOutcome {
            fsck_failed: !fsck.is_empty(),
            violations: fsck.into_iter().chain(oracle.violations).collect(),
            promises_checked: oracle.promises_checked,
            promise_counts: oracle.promise_counts,
        },
        Ok(Err(e)) => PointOutcome {
            violations: vec![format!("recovery failed: {e}")],
            fsck_failed: true,
            promises_checked: 0,
            promise_counts: BTreeMap::new(),
        },
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic");
            PointOutcome {
                violations: vec![format!("recovery panicked: {msg}")],
                fsck_failed: true,
                promises_checked: 0,
                promise_counts: BTreeMap::new(),
            }
        }
    }
}

/// Samples up to `max_points` distinct ordinals from `[setup, 0.9 *
/// total)`: evenly strided with seeded jitter, so points cover the
/// whole run instead of clustering.
fn sample_points(config: &FuzzConfig, setup: u64, total: u64) -> Vec<u64> {
    // Beyond 90% of the enumerated count, replay drift makes the
    // target unlikely to fire; below `setup`, the hook is not armed.
    let limit = ((total as f64) * 0.9) as u64;
    if limit <= setup {
        return Vec::new();
    }
    let span = limit - setup;
    if span <= config.max_points as u64 {
        return (setup..limit).collect();
    }
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x005A_17F5_C4A5);
    let mut points = Vec::with_capacity(config.max_points);
    for i in 0..config.max_points as u64 {
        let lo = setup + i * span / config.max_points as u64;
        let hi = setup + (i + 1) * span / config.max_points as u64;
        points.push(if hi > lo + 1 {
            rng.random_range(lo..hi)
        } else {
            lo
        });
    }
    points.dedup();
    points
}

/// Runs one full campaign: enumerate, sample, and for every sampled
/// boundary capture + recover + check.
pub fn run(config: &FuzzConfig) -> FsResult<FuzzReport> {
    let (setup, total) = enumerate_fences(config)?;
    let mut report = FuzzReport {
        fences_enumerated: total,
        ..FuzzReport::default()
    };
    for target in sample_points(config, setup, total) {
        let Some((image, records)) = capture_at(config, target)? else {
            report.points_unreached += 1;
            continue;
        };
        let outcome = recover_point(config, &image, &records);
        report.points_explored += 1;
        if outcome.fsck_failed {
            report.fsck_failures += 1;
        }
        report.violations.extend(
            outcome
                .violations
                .into_iter()
                .map(|v| format!("fence {target}: {v}")),
        );
        report.promises_checked += outcome.promises_checked;
        for (kind, n) in outcome.promise_counts {
            *report.promise_counts.entry(kind).or_insert(0) += n;
        }
    }
    Ok(report)
}

/// Differential classification of one crash point set.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Points where both policies recovered cleanly.
    pub consistent: u64,
    /// Violation only under `LoseUnflushed`: a missing flush/fence
    /// (the state was written but never made durable).
    pub missing_fence: u64,
    /// Violation under both policies: a logic bug independent of cache
    /// survival.
    pub logic_bug: u64,
    /// Violation only under `KeepAll` — impossible for a correct
    /// oracle/system pair, so any count here demands investigation.
    pub unclassified: u64,
    /// Points one of the two replays never reached.
    pub skipped: u64,
}

/// Crashes the same sampled points under `KeepAll` and `LoseUnflushed`
/// and classifies every divergence.
pub fn run_differential(config: &FuzzConfig, max_points: usize) -> FsResult<DiffReport> {
    let keep = FuzzConfig {
        policy: CrashPolicy::KeepAll,
        max_points,
        ..config.clone()
    };
    let lose = FuzzConfig {
        policy: CrashPolicy::LoseUnflushed,
        max_points,
        ..config.clone()
    };
    let (setup, total) = enumerate_fences(&lose)?;
    let mut report = DiffReport::default();
    for target in sample_points(&lose, setup, total) {
        let keep_outcome = capture_at(&keep, target)?
            .map(|(image, records)| recover_point(&keep, &image, &records));
        let lose_outcome = capture_at(&lose, target)?
            .map(|(image, records)| recover_point(&lose, &image, &records));
        let (Some(keep_outcome), Some(lose_outcome)) = (keep_outcome, lose_outcome) else {
            report.skipped += 1;
            continue;
        };
        match (
            keep_outcome.violations.is_empty(),
            lose_outcome.violations.is_empty(),
        ) {
            (true, true) => report.consistent += 1,
            (true, false) => report.missing_fence += 1,
            (false, false) => report.logic_bug += 1,
            (false, true) => report.unclassified += 1,
        }
    }
    Ok(report)
}

/// The outcome of the media-fault verification pass.
#[derive(Debug, Clone, Default)]
pub struct MediaFaultReport {
    /// Poisoned ranges injected.
    pub injected: u64,
    /// Reads of poisoned data that surfaced as `EIO` to the caller.
    pub propagated: u64,
    /// Whether files outside the poisoned ranges stayed fully readable.
    pub contained: bool,
    /// Whether clearing the poison restored the data intact.
    pub restored: bool,
}

/// Verifies media read errors propagate and stay contained: two files
/// are made durable, several ranges of the first file's blocks are
/// poisoned, and reads must fail with `EIO` on the victim, succeed on
/// the neighbor, and succeed everywhere once the poison clears.
pub fn run_media_faults(config: &FuzzConfig) -> FsResult<MediaFaultReport> {
    let (device, fs) = build(config)?;
    let victim: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 249) as u8).collect();
    let neighbor: Vec<u8> = (0..32 * 1024u32).map(|i| (i % 253) as u8).collect();
    fs.write_file("/victim", &victim)?;
    fs.write_file("/neighbor", &neighbor)?;
    let kernel = Arc::clone(fs.kernel());
    drop(fs);

    // Map the victim's blocks to device offsets and poison three
    // distinct ranges.
    let fd = kernel.open("/victim", OpenFlags::read_only())?;
    let size = kernel.fstat(fd)?.size;
    let mapping = kernel.dax_map(fd, 0, size, false)?;
    let mut report = MediaFaultReport::default();
    for file_off in [0u64, size / 2, size - 128] {
        let (dev_off, _) = mapping
            .translate(file_off)
            .ok_or_else(|| FsError::Io("victim mapping has a hole".into()))?;
        device.poison_range(dev_off, 64);
        report.injected += 1;
    }

    // Every read overlapping a poisoned range must surface EIO.
    for file_off in [0u64, size / 2, size - 128] {
        let mut buf = vec![0u8; 128];
        match kernel.read_at(fd, file_off, &mut buf) {
            Err(FsError::Io(msg)) if msg.contains("media read error") => {
                report.propagated += 1;
            }
            other => {
                return Err(FsError::Io(format!(
                    "poisoned read at {file_off} returned {other:?} instead of EIO"
                )))
            }
        }
    }

    // Containment: the neighbor file never touches the poisoned blocks.
    report.contained = kernel.read_file("/neighbor")? == neighbor;

    // Clearing the poison restores the victim bit-for-bit (the data
    // under the poisoned range was never altered, only unreadable).
    device.clear_poison();
    report.restored = kernel.read_file("/victim")? == victim;
    kernel.close(fd)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::chaos_seed;

    fn tiny(mode: Mode) -> FuzzConfig {
        let mut config = FuzzConfig::smoke(mode, chaos_seed(0xC4A0_5EED));
        config.max_points = 6;
        config.workload.ops_per_thread = 12;
        config
    }

    #[test]
    fn enumeration_counts_setup_and_workload_fences() {
        let config = tiny(Mode::Strict);
        let (setup, total) = enumerate_fences(&config).unwrap();
        assert!(setup > 0, "mkfs and instance start must fence");
        assert!(
            total > setup + 50,
            "the workload must cross many boundaries: setup={setup} total={total}"
        );
    }

    #[test]
    fn strict_mode_points_recover_clean() {
        let config = tiny(Mode::Strict);
        let report = run(&config).unwrap();
        assert!(
            report.points_explored >= 3,
            "too few points reached: {report:?}"
        );
        assert!(
            report.violations.is_empty(),
            "seed {}: {:#?}",
            crate::seed::replay_banner(config.seed),
            report.violations
        );
        assert_eq!(report.fsck_failures, 0);
        assert!(report.promises_checked > 0);
    }

    #[test]
    fn posix_mode_points_recover_clean() {
        let config = FuzzConfig {
            mode: Mode::Posix,
            ..tiny(Mode::Posix)
        };
        let report = run(&config).unwrap();
        assert!(report.points_explored >= 3, "{report:?}");
        assert!(
            report.violations.is_empty(),
            "seed {}: {:#?}",
            crate::seed::replay_banner(config.seed),
            report.violations
        );
    }

    #[test]
    fn tiered_migration_points_recover_clean() {
        // Crash points land around fsync-then-demote migrations: after
        // recovery every promised prefix must read back (reassembled
        // from whichever tier won) and fsck's tier-exclusivity pass must
        // find every segment wholly on exactly one tier.
        let mut config = FuzzConfig::tiered_smoke(Mode::Strict, chaos_seed(0x71E7_C4A0));
        config.max_points = 6;
        config.workload.ops_per_thread = 16;
        let report = run(&config).unwrap();
        assert!(report.points_explored >= 3, "{report:?}");
        assert!(
            report.violations.is_empty(),
            "seed {}: {:#?}",
            crate::seed::replay_banner(config.seed),
            report.violations
        );
        assert_eq!(report.fsck_failures, 0);
        assert!(report.promises_checked > 0);
    }

    #[test]
    fn torn_writes_policy_recovers_clean() {
        let mut config = tiny(Mode::Strict);
        config.policy = CrashPolicy::TornWrites { seed: config.seed };
        let report = run(&config).unwrap();
        assert!(report.points_explored >= 3, "{report:?}");
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
    }

    #[test]
    fn differential_classifies_without_unclassified_divergences() {
        let config = tiny(Mode::Strict);
        let report = run_differential(&config, 4).unwrap();
        assert!(
            report.consistent + report.missing_fence + report.logic_bug >= 2,
            "{report:?}"
        );
        assert_eq!(report.unclassified, 0, "{report:?}");
        assert_eq!(report.logic_bug, 0, "{report:?}");
        assert_eq!(report.missing_fence, 0, "{report:?}");
    }

    #[test]
    fn media_faults_propagate_and_stay_contained() {
        let report = run_media_faults(&tiny(Mode::Posix)).unwrap();
        assert_eq!(report.injected, 3);
        assert_eq!(report.propagated, 3);
        assert!(report.contained);
        assert!(report.restored);
    }
}
