//! Property: the torn-write model never interleaves bytes.
//!
//! The [`pmem::CrashPolicy::TornWrites`] model claims a torn cache line
//! is always a contiguous prefix of the pending store glued to a suffix
//! of the old durable bytes (or vice versa) — hardware drains whole
//! lines, so a crash can only cut *between* drains, never shuffle bytes
//! within one.  This property drives [`pmem::crash::tear_line`] with
//! arbitrary durable/pending contents and checks the claim structurally:
//! every output is exactly one of the `CACHE_LINE + 1` prefix splices or
//! one of the suffix splices, and the cut agrees with
//! [`pmem::crash::torn_cut`].  `CHAOS_SEED` steers both the generated
//! line contents (through the proptest shim) and the tear seed.

use chaos::chaos_seed;
use pmem::crash::{tear_line, torn_cut};
use pmem::CACHE_LINE;
use proptest::prelude::*;

/// All legal post-tear images of one line: for each cut point, the
/// pending-prefix splice and the pending-suffix splice.
fn legal_tears(durable: &[u8], pending: &[u8]) -> Vec<Vec<u8>> {
    let mut legal = Vec::with_capacity(2 * (durable.len() + 1));
    for cut in 0..=durable.len() {
        let mut prefix = pending[..cut].to_vec();
        prefix.extend_from_slice(&durable[cut..]);
        legal.push(prefix);
        let mut suffix = durable[..cut].to_vec();
        suffix.extend_from_slice(&pending[cut..]);
        legal.push(suffix);
    }
    legal
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A torn line is a prefix/suffix splice of (pending, durable) —
    /// never an interleaving — and matches the declared cut exactly.
    #[test]
    fn torn_line_is_prefix_or_suffix_never_interleaved(
        durable in prop::collection::vec(any::<u8>(), CACHE_LINE),
        pending in prop::collection::vec(any::<u8>(), CACHE_LINE),
        line_index in any::<u64>(),
        seed_salt in any::<u64>(),
    ) {
        let seed = chaos_seed(0xC4A0_5EED) ^ seed_salt;
        let torn = tear_line(seed, line_index, &durable, &pending);
        prop_assert_eq!(torn.len(), CACHE_LINE);

        // Structural claim: the output is one of the legal splices.
        prop_assert!(
            legal_tears(&durable, &pending).contains(&torn),
            "torn line interleaves durable and pending bytes \
             (seed {seed:#x}, line {line_index})"
        );

        // And it is exactly the splice torn_cut declares.
        let (cut, prefix) = torn_cut(seed, line_index);
        let expected: Vec<u8> = if prefix {
            pending[..cut].iter().chain(&durable[cut..]).copied().collect()
        } else {
            durable[..cut].iter().chain(&pending[cut..]).copied().collect()
        };
        prop_assert_eq!(torn, expected);

        // Determinism: a replay with the same seed tears identically.
        prop_assert_eq!(
            tear_line(seed, line_index, &durable, &pending),
            tear_line(seed, line_index, &durable, &pending)
        );
    }
}
