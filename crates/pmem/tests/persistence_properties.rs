//! Property-based tests of the device's persistence semantics: the crash
//! model must agree with a simple reference model in which a byte is
//! persistent if and only if the last store to its cache line was followed
//! by the required flush/fence sequence.

use std::sync::Arc;

use pmem::{AccessPattern, PersistMode, PmemBuilder, PmemDevice, TimeCategory};
use proptest::prelude::*;

const DEVICE_SIZE: usize = 4 * 1024 * 1024;

#[derive(Debug, Clone)]
enum Action {
    WriteTemporal { offset: u32, len: u16, value: u8 },
    WriteNt { offset: u32, len: u16, value: u8 },
    Flush { offset: u32, len: u16 },
    Fence,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    let off = 0u32..(DEVICE_SIZE as u32 - 65_536);
    let len = 1u16..4096;
    prop_oneof![
        (off.clone(), len.clone(), any::<u8>())
            .prop_map(|(offset, len, value)| Action::WriteTemporal { offset, len, value }),
        (off.clone(), len.clone(), any::<u8>()).prop_map(|(offset, len, value)| Action::WriteNt {
            offset,
            len,
            value
        }),
        (off, len).prop_map(|(offset, len)| Action::Flush { offset, len }),
        Just(Action::Fence),
    ]
}

/// Reference model: tracks the volatile view, the persistent view and the
/// per-line dirty/pending state, mirroring the documented semantics.
struct Model {
    volatile: Vec<u8>,
    persistent: Vec<u8>,
    dirty: std::collections::HashSet<u64>,
    pending: std::collections::HashSet<u64>,
}

impl Model {
    fn new() -> Self {
        Self {
            volatile: vec![0; DEVICE_SIZE],
            persistent: vec![0; DEVICE_SIZE],
            dirty: Default::default(),
            pending: Default::default(),
        }
    }

    fn lines(offset: u32, len: u16) -> impl Iterator<Item = u64> {
        let first = offset as u64 / 64;
        let last = (offset as u64 + len as u64 - 1) / 64;
        first..=last
    }

    fn apply(&mut self, action: &Action) {
        match action {
            Action::WriteTemporal { offset, len, value } => {
                self.volatile[*offset as usize..*offset as usize + *len as usize].fill(*value);
                for line in Self::lines(*offset, *len) {
                    self.pending.remove(&line);
                    self.dirty.insert(line);
                }
            }
            Action::WriteNt { offset, len, value } => {
                self.volatile[*offset as usize..*offset as usize + *len as usize].fill(*value);
                for line in Self::lines(*offset, *len) {
                    self.dirty.remove(&line);
                    self.pending.insert(line);
                }
            }
            Action::Flush { offset, len } => {
                for line in Self::lines(*offset, *len) {
                    if self.dirty.remove(&line) {
                        self.pending.insert(line);
                    }
                }
            }
            Action::Fence => {
                for line in self.pending.drain() {
                    let start = (line * 64) as usize;
                    self.persistent[start..start + 64]
                        .copy_from_slice(&self.volatile[start..start + 64]);
                }
            }
        }
    }
}

fn apply_to_device(device: &Arc<PmemDevice>, action: &Action) {
    match action {
        Action::WriteTemporal { offset, len, value } => device.write(
            *offset as u64,
            &vec![*value; *len as usize],
            PersistMode::Temporal,
            TimeCategory::UserData,
        ),
        Action::WriteNt { offset, len, value } => device.write(
            *offset as u64,
            &vec![*value; *len as usize],
            PersistMode::NonTemporal,
            TimeCategory::UserData,
        ),
        Action::Flush { offset, len } => {
            device.flush(*offset as u64, *len as usize, TimeCategory::UserData)
        }
        Action::Fence => device.fence(TimeCategory::UserData),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The volatile view always matches the model, and after a crash the
    /// device contents match the model's persistent view exactly.
    #[test]
    fn crash_contents_match_reference_model(
        actions in prop::collection::vec(action_strategy(), 1..40),
        probe_offsets in prop::collection::vec(0u32..(DEVICE_SIZE as u32 - 128), 8),
    ) {
        let device = PmemBuilder::new(DEVICE_SIZE).build();
        let mut model = Model::new();
        for action in &actions {
            apply_to_device(&device, action);
            model.apply(action);
        }
        // Volatile view agrees before the crash.
        for &off in &probe_offsets {
            let mut buf = [0u8; 128];
            device.read(off as u64, &mut buf, AccessPattern::Random, TimeCategory::UserData);
            prop_assert_eq!(&buf[..], &model.volatile[off as usize..off as usize + 128]);
        }
        // Persistent view agrees after the crash.
        device.crash();
        for &off in &probe_offsets {
            let mut buf = [0u8; 128];
            device.read_uncharged(off as u64, &mut buf);
            prop_assert_eq!(&buf[..], &model.persistent[off as usize..off as usize + 128]);
        }
    }

    /// Simulated time is monotone and every charged byte is accounted for
    /// in the statistics.
    #[test]
    fn time_and_traffic_accounting_is_monotone(
        actions in prop::collection::vec(action_strategy(), 1..30),
    ) {
        let device = PmemBuilder::new(DEVICE_SIZE).build();
        let mut last_ns = 0.0f64;
        let mut expected_written = 0u64;
        for action in &actions {
            apply_to_device(&device, action);
            let now = device.clock().now_ns_f64();
            prop_assert!(now >= last_ns, "clock went backwards");
            last_ns = now;
            if let Action::WriteTemporal { len, .. } | Action::WriteNt { len, .. } = action {
                expected_written += *len as u64;
            }
        }
        let snap = device.stats().snapshot();
        prop_assert_eq!(snap.total_bytes_written(), expected_written);
    }
}
