//! Crash-injection policy.
//!
//! A simulated crash discards the volatile view of the device and restores
//! the persistent image — everything that was flushed and fenced.  Crash
//! tests in the file-system crates use this to check the paper's
//! crash-consistency claims (Table 3): metadata consistency in POSIX mode,
//! synchronous durability in sync mode, and atomic operations in strict
//! mode.

use crate::CACHE_LINE;

/// What happens to cache lines that were written but never flushed+fenced
/// when a crash is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashPolicy {
    /// All unflushed lines are lost.  This is the conservative model used by
    /// the crash-consistency tests: recovery must work even when nothing
    /// beyond the persistence domain survived.
    #[default]
    LoseUnflushed,
    /// Unflushed lines survive (as if the cache were flushed by the platform
    /// on power failure).  Useful for differential testing: a bug that only
    /// reproduces under `LoseUnflushed` is a missing flush/fence.
    KeepAll,
    /// Unflushed lines survive *torn*: for each written-but-unfenced cache
    /// line, a contiguous prefix or suffix of the pending store reaches the
    /// persistence domain and the rest of the line keeps its old durable
    /// bytes.  Hardware persists whole lines atomically, but a crash can
    /// land between the line-sized drains of a multi-line store — this
    /// policy models the worst legal outcome at line granularity.  The cut
    /// point and direction are a pure function of the seed and the line
    /// index, so a failing run is replayable.
    TornWrites {
        /// Seed selecting each line's survival cut point and direction.
        seed: u64,
    },
}

/// The deterministic tear decision for one cache line: how many bytes
/// survive (`0..=CACHE_LINE`) and whether they are a prefix (`true`) or a
/// suffix (`false`) of the pending store.
pub fn torn_cut(seed: u64, line_index: u64) -> (usize, bool) {
    // splitmix64 over (seed, line) — stateless, so enumeration order of the
    // dirty-line set cannot affect the outcome.
    let mut z = seed ^ line_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let cut = (z % (CACHE_LINE as u64 + 1)) as usize;
    let prefix = (z >> 32) & 1 == 0;
    (cut, prefix)
}

/// Applies the tear for `line_index` to one cache line: `durable` holds the
/// old (fenced) bytes, `pending` the new volatile bytes, and the result is
/// the line as it would read after the crash.  The survivor is always
/// `pending[..cut] + durable[cut..]` or `durable[..cut] + pending[cut..]` —
/// never an interleaving.
pub fn tear_line(seed: u64, line_index: u64, durable: &[u8], pending: &[u8]) -> Vec<u8> {
    debug_assert_eq!(durable.len(), pending.len());
    let (cut, prefix) = torn_cut(seed, line_index);
    let cut = cut.min(durable.len());
    let mut out = Vec::with_capacity(durable.len());
    if prefix {
        out.extend_from_slice(&pending[..cut]);
        out.extend_from_slice(&durable[cut..]);
    } else {
        out.extend_from_slice(&durable[..cut]);
        out.extend_from_slice(&pending[cut..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_conservative() {
        assert_eq!(CrashPolicy::default(), CrashPolicy::LoseUnflushed);
    }

    #[test]
    fn torn_cut_is_deterministic_and_bounded() {
        for line in 0..1000u64 {
            let (cut, prefix) = torn_cut(42, line);
            assert_eq!((cut, prefix), torn_cut(42, line));
            assert!(cut <= CACHE_LINE);
        }
    }

    #[test]
    fn torn_cut_varies_across_lines_and_seeds() {
        let cuts: std::collections::HashSet<usize> =
            (0..256).map(|line| torn_cut(7, line).0).collect();
        assert!(cuts.len() > 8, "cut points should spread over the line");
        assert_ne!(
            (0..32).map(|l| torn_cut(1, l)).collect::<Vec<_>>(),
            (0..32).map(|l| torn_cut(2, l)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn tear_is_prefix_or_suffix_of_pending() {
        let durable = [0xAAu8; CACHE_LINE];
        let pending = [0x55u8; CACHE_LINE];
        for line in 0..256u64 {
            let torn = tear_line(9, line, &durable, &pending);
            let (cut, prefix) = torn_cut(9, line);
            if prefix {
                assert!(torn[..cut].iter().all(|&b| b == 0x55));
                assert!(torn[cut..].iter().all(|&b| b == 0xAA));
            } else {
                assert!(torn[..cut].iter().all(|&b| b == 0xAA));
                assert!(torn[cut..].iter().all(|&b| b == 0x55));
            }
        }
    }
}
