//! Crash-injection policy.
//!
//! A simulated crash discards the volatile view of the device and restores
//! the persistent image — everything that was flushed and fenced.  Crash
//! tests in the file-system crates use this to check the paper's
//! crash-consistency claims (Table 3): metadata consistency in POSIX mode,
//! synchronous durability in sync mode, and atomic operations in strict
//! mode.

/// What happens to cache lines that were written but never flushed+fenced
/// when a crash is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashPolicy {
    /// All unflushed lines are lost.  This is the conservative model used by
    /// the crash-consistency tests: recovery must work even when nothing
    /// beyond the persistence domain survived.
    #[default]
    LoseUnflushed,
    /// Unflushed lines survive (as if the cache were flushed by the platform
    /// on power failure).  Useful for differential testing: a bug that only
    /// reproduces under `LoseUnflushed` is a missing flush/fence.
    KeepAll,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_conservative() {
        assert_eq!(CrashPolicy::default(), CrashPolicy::LoseUnflushed);
    }
}
