//! The calibrated cost model.
//!
//! Every constant in [`CostModel`] is a simulated-nanosecond cost for one
//! device access or one modelled software action.  The device constants are
//! taken from Table 2 of the SplitFS paper (Izraelevitz et al.'s Optane DC
//! PMM measurements); the software constants were calibrated so that the
//! single-threaded 4 KiB-append microbenchmark reproduces the ordering and
//! rough magnitudes of paper Table 1 (ext4 DAX ≈ 9.0 µs, PMFS ≈ 4.2 µs,
//! NOVA-strict ≈ 3.0 µs, SplitFS-strict ≈ 1.25 µs, SplitFS-POSIX ≈ 1.16 µs
//! against a 671 ns raw 4 KiB device write).
//!
//! The absolute values are *not* claims about any particular machine; they
//! only need to preserve the relative cost structure: kernel traps and
//! journaling are an order of magnitude more expensive than a user-space
//! hash-map lookup, a jbd2 transaction writes several metadata blocks, NOVA
//! writes two cache lines and two fences per operation while the SplitFS
//! operation log writes one of each, and so on.

/// Cost constants for device accesses and modelled software actions.
///
/// All values are simulated nanoseconds (`_ns`) or nanoseconds per byte
/// (`_ns_per_byte`).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    // ------------------------------------------------------------------
    // Device: persistent memory (paper Table 2)
    // ------------------------------------------------------------------
    /// Latency of a sequential read that misses the CPU cache (Table 2:
    /// 169 ns).  Charged once per read call.
    pub pm_read_seq_latency_ns: f64,
    /// Latency of a random read that misses the CPU cache (Table 2: 305 ns).
    pub pm_read_rand_latency_ns: f64,
    /// Per-byte read cost from PM read bandwidth (Table 2: 39.4 GB/s →
    /// ~0.0254 ns/B).
    pub pm_read_ns_per_byte: f64,
    /// Fixed start-up latency of a store burst to PM (part of the 91 ns
    /// store+flush+fence figure in Table 2).
    pub pm_write_latency_ns: f64,
    /// Per-byte write cost.  Calibrated so that a 4 KiB non-temporal write
    /// costs ≈ 671 ns, the raw append cost quoted with paper Table 1
    /// (Optane write bandwidth is ~6× lower than DRAM).
    pub pm_write_ns_per_byte: f64,
    /// Cost of one `clwb`/`clflush` of a dirty cache line.
    pub clwb_ns: f64,
    /// Cost of one `sfence`.
    pub sfence_ns: f64,
    /// Per-byte cost of a DRAM copy (used when data is staged in DRAM or
    /// copied between user buffers).
    pub dram_copy_ns_per_byte: f64,

    // ------------------------------------------------------------------
    // Device: capacity tier (block-granular slow storage behind PM)
    // ------------------------------------------------------------------
    /// Fixed latency of one capacity-tier read request.  Modelled on a
    /// low-latency NVMe flash device: roughly an order of magnitude slower
    /// than a PM load.
    pub cap_read_latency_ns: f64,
    /// Per-byte read cost of the capacity tier (~3 GB/s streaming).
    pub cap_read_ns_per_byte: f64,
    /// Fixed latency of one capacity-tier write request.
    pub cap_write_latency_ns: f64,
    /// Per-byte write cost of the capacity tier (~2 GB/s streaming).
    pub cap_write_ns_per_byte: f64,

    // ------------------------------------------------------------------
    // Kernel-boundary and virtual-memory costs
    // ------------------------------------------------------------------
    /// Entering and leaving the kernel for one system call.
    pub kernel_trap_ns: f64,
    /// Generic in-kernel VFS work per system call: fd lookup, permission
    /// checks, dentry/inode reference handling.
    pub vfs_path_ns: f64,
    /// Servicing one 4 KiB page fault on a DAX mapping.
    pub page_fault_4k_ns: f64,
    /// Servicing one 2 MiB huge-page fault on a DAX mapping (cheaper per
    /// byte than 512 individual 4 KiB faults; §4 of the paper).
    pub page_fault_2m_ns: f64,
    /// Setting up an `mmap` region (VMA creation), excluding faults.
    pub mmap_setup_ns: f64,

    // ------------------------------------------------------------------
    // ext4-DAX (K-Split) software costs
    // ------------------------------------------------------------------
    /// Allocating one extent from the block allocator (bitmap scan, group
    /// descriptor update decision).
    pub ext4_alloc_ns: f64,
    /// Looking up an extent in the extent tree.
    pub ext4_extent_lookup_ns: f64,
    /// Starting + committing one jbd2 journal transaction (handle start,
    /// buffer management, commit record), excluding the journal block
    /// writes themselves which are charged as device traffic.
    pub ext4_journal_txn_ns: f64,
    /// Per metadata block logged in a jbd2 transaction.
    pub ext4_journal_per_block_ns: f64,
    /// Directory entry insert/remove/lookup work.
    pub ext4_dirent_ns: f64,
    /// Inode read/update bookkeeping in the kernel.
    pub ext4_inode_update_ns: f64,

    // ------------------------------------------------------------------
    // PMFS software costs
    // ------------------------------------------------------------------
    /// PMFS block allocation.
    pub pmfs_alloc_ns: f64,
    /// PMFS fine-grained undo-journal record (metadata only).
    pub pmfs_journal_record_ns: f64,
    /// PMFS inode/index update.
    pub pmfs_inode_update_ns: f64,

    // ------------------------------------------------------------------
    // NOVA software costs
    // ------------------------------------------------------------------
    /// Appending one entry to a per-inode NOVA log (CPU part; the two cache
    /// lines and two fences are charged as device traffic).
    pub nova_log_entry_ns: f64,
    /// NOVA per-CPU free-list allocation.
    pub nova_alloc_ns: f64,
    /// Updating NOVA's in-DRAM radix tree after an operation.
    pub nova_radix_update_ns: f64,

    // ------------------------------------------------------------------
    // Strata software costs
    // ------------------------------------------------------------------
    /// Appending a record to Strata's per-process private log (CPU part).
    pub strata_log_append_ns: f64,
    /// Per-byte cost of the digest phase (coalescing + copying from the
    /// private log into the shared area) beyond the raw device copy.
    pub strata_digest_ns_per_byte: f64,
    /// Updating Strata's user-space extent/lease metadata per operation.
    pub strata_index_ns: f64,

    // ------------------------------------------------------------------
    // SplitFS (U-Split) software costs
    // ------------------------------------------------------------------
    /// U-Split per-operation bookkeeping: fd-table lookup, cached-attribute
    /// permission check, offset update.
    pub usplit_bookkeeping_ns: f64,
    /// Looking up the collection of memory-mappings for a file offset.
    pub usplit_mmap_lookup_ns: f64,
    /// Building one 64 B operation-log entry (checksum + CAS on the DRAM
    /// tail), excluding the device write and the fence.
    pub usplit_log_entry_cpu_ns: f64,
    /// Taking a staging-file block from the pre-allocated pool.
    pub usplit_staging_take_ns: f64,
}

impl CostModel {
    /// The calibrated model used throughout the reproduction.
    pub fn calibrated() -> Self {
        Self {
            // Device (Table 2).
            pm_read_seq_latency_ns: 169.0,
            pm_read_rand_latency_ns: 305.0,
            pm_read_ns_per_byte: 0.0254,
            pm_write_latency_ns: 71.0,
            pm_write_ns_per_byte: 0.1465, // 4096 B * 0.1465 + 71 ≈ 671 ns
            clwb_ns: 25.0,
            sfence_ns: 30.0,
            dram_copy_ns_per_byte: 0.012,

            // Capacity tier: block-granular flash an order of magnitude
            // slower than PM, accessed through request queues.
            cap_read_latency_ns: 8_000.0,
            cap_read_ns_per_byte: 0.33,
            cap_write_latency_ns: 12_000.0,
            cap_write_ns_per_byte: 0.5,

            // Kernel boundary / VM.
            kernel_trap_ns: 280.0,
            vfs_path_ns: 320.0,
            page_fault_4k_ns: 2600.0,
            page_fault_2m_ns: 22_000.0,
            mmap_setup_ns: 1800.0,

            // ext4 DAX. Calibrated so a journaled 4 KiB append lands near
            // 9 µs total: trap + vfs + alloc + extent insert + txn with ~4
            // logged metadata blocks + inode update + dax write path.
            ext4_alloc_ns: 900.0,
            ext4_extent_lookup_ns: 350.0,
            ext4_journal_txn_ns: 2600.0,
            ext4_journal_per_block_ns: 450.0,
            ext4_dirent_ns: 700.0,
            ext4_inode_update_ns: 400.0,

            // PMFS: cheaper allocation and fine-grained journaling.
            pmfs_alloc_ns: 420.0,
            pmfs_journal_record_ns: 380.0,
            pmfs_inode_update_ns: 300.0,

            // NOVA: log-structured, two cache lines + two fences per op.
            nova_log_entry_ns: 380.0,
            nova_alloc_ns: 300.0,
            nova_radix_update_ns: 260.0,

            // Strata.
            strata_log_append_ns: 420.0,
            strata_digest_ns_per_byte: 0.05,
            strata_index_ns: 350.0,

            // U-Split.
            usplit_bookkeeping_ns: 120.0,
            usplit_mmap_lookup_ns: 60.0,
            usplit_log_entry_cpu_ns: 90.0,
            usplit_staging_take_ns: 70.0,
        }
    }

    /// A model where every cost is zero.  Useful for unit tests that check
    /// functional behaviour and do not care about timing.
    pub fn zero() -> Self {
        Self {
            pm_read_seq_latency_ns: 0.0,
            pm_read_rand_latency_ns: 0.0,
            pm_read_ns_per_byte: 0.0,
            pm_write_latency_ns: 0.0,
            pm_write_ns_per_byte: 0.0,
            clwb_ns: 0.0,
            sfence_ns: 0.0,
            dram_copy_ns_per_byte: 0.0,
            cap_read_latency_ns: 0.0,
            cap_read_ns_per_byte: 0.0,
            cap_write_latency_ns: 0.0,
            cap_write_ns_per_byte: 0.0,
            kernel_trap_ns: 0.0,
            vfs_path_ns: 0.0,
            page_fault_4k_ns: 0.0,
            page_fault_2m_ns: 0.0,
            mmap_setup_ns: 0.0,
            ext4_alloc_ns: 0.0,
            ext4_extent_lookup_ns: 0.0,
            ext4_journal_txn_ns: 0.0,
            ext4_journal_per_block_ns: 0.0,
            ext4_dirent_ns: 0.0,
            ext4_inode_update_ns: 0.0,
            pmfs_alloc_ns: 0.0,
            pmfs_journal_record_ns: 0.0,
            pmfs_inode_update_ns: 0.0,
            nova_log_entry_ns: 0.0,
            nova_alloc_ns: 0.0,
            nova_radix_update_ns: 0.0,
            strata_log_append_ns: 0.0,
            strata_digest_ns_per_byte: 0.0,
            strata_index_ns: 0.0,
            usplit_bookkeeping_ns: 0.0,
            usplit_mmap_lookup_ns: 0.0,
            usplit_log_entry_cpu_ns: 0.0,
            usplit_staging_take_ns: 0.0,
        }
    }

    /// Cost of reading `len` bytes from PM with the given access pattern.
    pub fn pm_read_cost(&self, len: usize, sequential: bool) -> f64 {
        let latency = if sequential {
            self.pm_read_seq_latency_ns
        } else {
            self.pm_read_rand_latency_ns
        };
        latency + len as f64 * self.pm_read_ns_per_byte
    }

    /// Cost of writing `len` bytes to PM (temporal or non-temporal store
    /// burst, excluding flushes and fences which are charged separately).
    pub fn pm_write_cost(&self, len: usize) -> f64 {
        if len == 0 {
            return 0.0;
        }
        self.pm_write_latency_ns + len as f64 * self.pm_write_ns_per_byte
    }

    /// Cost of flushing `lines` cache lines and issuing one fence.
    pub fn persist_cost(&self, lines: usize) -> f64 {
        lines as f64 * self.clwb_ns + self.sfence_ns
    }

    /// Cost of reading `len` bytes from the capacity tier.  The tier is
    /// block-granular: a request always transfers whole 4 KiB blocks, so
    /// the byte cost is charged on the rounded-up length.
    pub fn cap_read_cost(&self, len: usize) -> f64 {
        if len == 0 {
            return 0.0;
        }
        let blocks = len.div_ceil(4096);
        self.cap_read_latency_ns + (blocks * 4096) as f64 * self.cap_read_ns_per_byte
    }

    /// Cost of writing `len` bytes to the capacity tier (block-granular,
    /// see [`CostModel::cap_read_cost`]).
    pub fn cap_write_cost(&self, len: usize) -> f64 {
        if len == 0 {
            return 0.0;
        }
        let blocks = len.div_ceil(4096);
        self.cap_write_latency_ns + (blocks * 4096) as f64 * self.cap_write_ns_per_byte
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_4k_write_is_about_671ns() {
        let m = CostModel::calibrated();
        let cost = m.pm_write_cost(4096);
        assert!(
            (cost - 671.0).abs() < 10.0,
            "4 KiB write cost {cost} should be ~671 ns as in paper Table 1"
        );
    }

    #[test]
    fn random_reads_cost_more_than_sequential() {
        let m = CostModel::calibrated();
        assert!(m.pm_read_cost(4096, false) > m.pm_read_cost(4096, true));
    }

    #[test]
    fn zero_model_charges_nothing() {
        let m = CostModel::zero();
        assert_eq!(m.pm_write_cost(4096), 0.0);
        assert_eq!(m.pm_read_cost(4096, true), 0.0);
        assert_eq!(m.persist_cost(10), 0.0);
    }

    #[test]
    fn empty_write_is_free() {
        let m = CostModel::calibrated();
        assert_eq!(m.pm_write_cost(0), 0.0);
    }

    #[test]
    fn capacity_tier_is_slower_than_pm() {
        let m = CostModel::calibrated();
        assert!(m.cap_read_cost(4096) > 5.0 * m.pm_read_cost(4096, true));
        assert!(m.cap_write_cost(4096) > 5.0 * m.pm_write_cost(4096));
        // Block granularity: a 1-byte read costs the same as a 4 KiB read.
        assert_eq!(m.cap_read_cost(1), m.cap_read_cost(4096));
        assert_eq!(m.cap_read_cost(0), 0.0);
    }

    #[test]
    fn kernel_costs_dominate_usplit_costs() {
        // The premise of the split architecture: a kernel round trip plus
        // journaling is far more expensive than user-space bookkeeping.
        let m = CostModel::calibrated();
        let kernel = m.kernel_trap_ns + m.vfs_path_ns + m.ext4_journal_txn_ns;
        let usplit = m.usplit_bookkeeping_ns + m.usplit_mmap_lookup_ns + m.usplit_log_entry_cpu_ns;
        assert!(kernel > 5.0 * usplit);
    }
}
