//! The emulated persistent-memory device.
//!
//! [`PmemDevice`] is a flat, byte-addressable physical address space backed
//! by DRAM, sharded into lock-protected chunks so that concurrent file
//! systems can access disjoint regions in parallel.  It models:
//!
//! * store visibility vs persistence (temporal stores must be flushed and
//!   fenced; non-temporal stores persist at the next fence),
//! * crash behaviour (unflushed lines are lost, see [`crate::crash`]),
//! * access cost (every read/write/flush/fence charges simulated time to
//!   the shared [`SimClock`] and [`Stats`], classified by
//!   [`TimeCategory`]).
//!
//! File systems treat offsets into the device as "physical PM addresses";
//! a DAX mmap in `kernelfs` is simply a range of device offsets handed to
//! user space (U-Split), exactly as ext4 DAX hands out PM physical pages
//! through the page table.

use std::collections::{HashMap, HashSet};
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock, RwLockReadGuard};

use crate::clock::SimClock;
use crate::cost::CostModel;
use crate::crash::{tear_line, CrashPolicy};
use crate::oracle::{Promise, PromiseLedger};
use crate::persist::{AccessPattern, PersistMode};
use crate::stats::{Stats, TimeCategory};
use crate::CACHE_LINE;

/// Size of one device shard.  Accesses spanning shards are split internally.
const SHARD_SIZE: usize = 1 << 20; // 1 MiB

/// Builder for [`PmemDevice`].
#[derive(Debug, Clone)]
pub struct PmemBuilder {
    size: usize,
    cost: CostModel,
    track_persistence: bool,
    crash_policy: CrashPolicy,
}

impl PmemBuilder {
    /// Starts a builder for a device of `size` bytes.  The size is rounded
    /// up to a whole number of shards.
    pub fn new(size: usize) -> Self {
        Self {
            size,
            cost: CostModel::calibrated(),
            track_persistence: true,
            crash_policy: CrashPolicy::default(),
        }
    }

    /// Uses the given cost model instead of [`CostModel::calibrated`].
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Enables or disables persistence tracking (the shadow image needed for
    /// crash injection).  Disabling it halves memory use and is appropriate
    /// for pure-performance experiments that never call
    /// [`PmemDevice::crash`].
    pub fn track_persistence(mut self, enable: bool) -> Self {
        self.track_persistence = enable;
        self
    }

    /// Sets the crash policy.
    pub fn crash_policy(mut self, policy: CrashPolicy) -> Self {
        self.crash_policy = policy;
        self
    }

    /// Builds the device.
    pub fn build(self) -> Arc<PmemDevice> {
        let n_shards = self.size.div_ceil(SHARD_SIZE).max(1);
        let shards = (0..n_shards)
            .map(|_| {
                RwLock::new(Shard {
                    data: vec![0u8; SHARD_SIZE].into_boxed_slice(),
                    shadow: if self.track_persistence {
                        Some(vec![0u8; SHARD_SIZE].into_boxed_slice())
                    } else {
                        None
                    },
                })
            })
            .collect();
        Arc::new(PmemDevice {
            size: n_shards * SHARD_SIZE,
            shards,
            tracker: Mutex::new(PersistTracker::default()),
            track_persistence: self.track_persistence,
            crash_policy: self.crash_policy,
            clock: Arc::new(SimClock::new()),
            stats: Arc::new(Stats::new()),
            cost: self.cost,
            fence_seq: AtomicU64::new(0),
            fence_hook: FenceHookSlot(Mutex::new(None)),
            fence_hook_armed: AtomicBool::new(false),
            poison: Mutex::new(Vec::new()),
            poison_armed: AtomicBool::new(false),
            ledger: PromiseLedger::default(),
        })
    }
}

/// A fence interceptor: called at the *start* of every
/// [`PmemDevice::fence`] with the fence's ordinal (0-based, monotone per
/// device), before any pending line drains.  A crash image captured inside
/// the hook at ordinal `k` therefore models "power fails before fence `k`
/// completes".  The hook runs on the fencing thread with no device locks
/// held; it must not call `fence` itself.
pub type FenceHook = Arc<dyn Fn(&PmemDevice, u64) + Send + Sync>;

struct FenceHookSlot(Mutex<Option<FenceHook>>);

impl std::fmt::Debug for FenceHookSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FenceHookSlot")
    }
}

/// A point-in-time post-crash image of the whole device, computed under the
/// device's [`CrashPolicy`] by [`PmemDevice::capture_crash_image`].
///
/// Capturing does not perturb the live device: the workload keeps running
/// and the image is later [restored](PmemDevice::restore_crash_image) into
/// a fresh device to exercise recovery.  The image also snapshots the
/// promise-ledger length *before* any byte is copied, so every recorded
/// promise with `seq < ledger_len` was established strictly before the
/// captured state.
#[derive(Debug, Clone)]
pub struct CrashImage {
    size: usize,
    fence_ordinal: u64,
    ledger_len: usize,
    torn_lines: u64,
    shards: Vec<Box<[u8]>>,
}

impl CrashImage {
    /// Device capacity the image was captured from.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Value of the device fence ordinal when the capture ran.
    pub fn fence_ordinal(&self) -> u64 {
        self.fence_ordinal
    }

    /// Promise-ledger length snapshotted at the start of the capture;
    /// promises with `seq` below this bound recovery from this image.
    pub fn ledger_len(&self) -> usize {
        self.ledger_len
    }

    /// Number of cache lines that survived torn (always 0 outside
    /// [`CrashPolicy::TornWrites`]).
    pub fn torn_lines(&self) -> u64 {
        self.torn_lines
    }
}

#[derive(Debug)]
struct Shard {
    /// The volatile view: what loads observe right now.
    data: Box<[u8]>,
    /// The persistent image: what survives a crash.  `None` when
    /// persistence tracking is disabled.
    shadow: Option<Box<[u8]>>,
}

/// Tracks which cache lines are dirty (written but not flushed) and which
/// are pending (flushed or written non-temporally, persistent at the next
/// fence).  Keys are absolute cache-line indices (`offset / CACHE_LINE`).
#[derive(Debug, Default)]
struct PersistTracker {
    dirty: HashSet<u64>,
    pending: HashSet<u64>,
}

/// The emulated persistent-memory device.  See the module documentation.
#[derive(Debug)]
pub struct PmemDevice {
    size: usize,
    shards: Vec<RwLock<Shard>>,
    tracker: Mutex<PersistTracker>,
    track_persistence: bool,
    crash_policy: CrashPolicy,
    clock: Arc<SimClock>,
    stats: Arc<Stats>,
    cost: CostModel,
    /// Monotone count of fences issued; the hook sees each fence's ordinal.
    fence_seq: AtomicU64,
    fence_hook: FenceHookSlot,
    /// Fast-path gate so un-instrumented runs pay one relaxed load per fence.
    fence_hook_armed: AtomicBool,
    /// Byte ranges that fail checked reads (media-error injection).
    poison: Mutex<Vec<(u64, u64)>>,
    poison_armed: AtomicBool,
    ledger: PromiseLedger,
}

impl PmemDevice {
    /// Total capacity in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// The shared statistics accumulator.
    pub fn stats(&self) -> &Arc<Stats> {
        &self.stats
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Acquires a shard-style lock with contention accounting: `try_lock`
    /// is attempted first; on failure the contended acquisition is counted
    /// in `shard_lock_waits` and the blocked time — measured as the global
    /// simulated-clock delta across `lock`, i.e. the simulated work other
    /// threads completed while this one could not proceed — is charged to
    /// the calling thread's critical path
    /// ([`SimClock::charge_thread_wait`](crate::SimClock::charge_thread_wait)).
    /// Every sharded structure (kernel inode shards, journal admission
    /// regions, U-Split registries) funnels through this one helper so the
    /// wait-accounting rule cannot drift between call sites.
    pub fn lock_contended<G>(
        &self,
        try_lock: impl FnOnce() -> Option<G>,
        lock: impl FnOnce() -> G,
    ) -> G {
        match try_lock() {
            Some(guard) => guard,
            None => {
                self.stats().add_shard_lock_wait();
                let t0 = self.clock().now_ns_f64();
                let guard = lock();
                crate::SimClock::charge_thread_wait(self.clock().now_ns_f64() - t0);
                guard
            }
        }
    }

    /// Charges `ns` of pure software time (kernel traps, allocation
    /// decisions, bookkeeping) to the clock and stats.
    pub fn charge_software(&self, ns: f64) {
        self.clock.advance(ns);
        self.stats.add_time(TimeCategory::Software, ns);
    }

    /// Charges `ns` of time attributed to an arbitrary category.
    pub fn charge(&self, cat: TimeCategory, ns: f64) {
        self.clock.advance(ns);
        self.stats.add_time(cat, ns);
    }

    fn check_range(&self, offset: u64, len: usize) {
        let end = offset
            .checked_add(len as u64)
            .expect("pmem access offset overflow");
        assert!(
            end <= self.size as u64,
            "pmem access out of range: offset {offset} len {len} device size {}",
            self.size
        );
    }

    /// Reads `buf.len()` bytes starting at `offset`, charging read cost.
    pub fn read(&self, offset: u64, buf: &mut [u8], pattern: AccessPattern, cat: TimeCategory) {
        self.check_range(offset, buf.len());
        self.read_uncharged(offset, buf);
        let ns = self.cost.pm_read_cost(buf.len(), pattern.is_sequential());
        self.clock.advance(ns);
        self.stats.add_time(cat, ns);
        self.stats.add_bytes_read(cat, buf.len() as u64);
    }

    /// Serves a read as a **zero-copy borrow** of device memory, charging
    /// read cost but performing no memcpy.  This models a load-from-DAX
    /// access: the caller gets the physical bytes directly.
    ///
    /// Returns `None` when the range is empty or crosses a shard boundary
    /// (the borrow is backed by one shard's read guard); callers fall back
    /// to an owned [`PmemDevice::read`].  The returned [`PmemView`] holds a
    /// shard read lock for its lifetime, so **any** writer to the same
    /// 1 MiB shard — same thread or another — blocks until it is dropped.
    /// Treat a view as short-lived: drop (or copy out of) it before
    /// issuing further device writes from the same thread, and never hold
    /// one while blocking on a lock another writing thread may own, or
    /// the pinned shard becomes one side of an ABBA deadlock.
    pub fn try_read_view(
        &self,
        offset: u64,
        len: usize,
        pattern: AccessPattern,
        cat: TimeCategory,
    ) -> Option<PmemView<'_>> {
        if len == 0 {
            return None;
        }
        self.check_range(offset, len);
        if self.poison_hit(offset, len).is_some() {
            // Refuse the zero-copy path so the caller's owned-read fallback
            // (which reads through `try_read`) surfaces the media error.
            return None;
        }
        let start = offset as usize;
        let shard_idx = start / SHARD_SIZE;
        if (start + len - 1) / SHARD_SIZE != shard_idx {
            return None;
        }
        let guard = self.shards[shard_idx].read();
        let ns = self.cost.pm_read_cost(len, pattern.is_sequential());
        self.clock.advance(ns);
        self.stats.add_time(cat, ns);
        self.stats.add_bytes_read(cat, len as u64);
        self.stats.add_zero_copy_read_bytes(len as u64);
        Some(PmemView {
            guard,
            start: start % SHARD_SIZE,
            len,
        })
    }

    /// Reads without charging any simulated time.  Used by recovery scans
    /// whose cost is charged explicitly by the caller, and by tests.
    pub fn read_uncharged(&self, offset: u64, buf: &mut [u8]) {
        self.check_range(offset, buf.len());
        let mut done = 0usize;
        while done < buf.len() {
            let abs = offset as usize + done;
            let shard_idx = abs / SHARD_SIZE;
            let within = abs % SHARD_SIZE;
            let n = (SHARD_SIZE - within).min(buf.len() - done);
            let shard = self.shards[shard_idx].read();
            buf[done..done + n].copy_from_slice(&shard.data[within..within + n]);
            done += n;
        }
    }

    /// Writes `data` at `offset`, charging write cost.
    ///
    /// With [`PersistMode::Temporal`] the bytes are visible but not yet
    /// persistent (the affected cache lines become *dirty*).  With
    /// [`PersistMode::NonTemporal`] the lines become *pending* and will be
    /// persistent after the next [`PmemDevice::fence`].
    pub fn write(&self, offset: u64, data: &[u8], mode: PersistMode, cat: TimeCategory) {
        self.check_range(offset, data.len());
        self.write_volatile_view(offset, data);
        if self.track_persistence {
            self.mark_lines(offset, data.len(), mode);
        }
        let ns = self.cost.pm_write_cost(data.len());
        self.clock.advance(ns);
        self.stats.add_time(cat, ns);
        self.stats.add_bytes_written(cat, data.len() as u64);
    }

    /// Charges the time and statistics of writing `len` bytes without
    /// modifying any device contents.  Used to model traffic whose payload
    /// is irrelevant to correctness (e.g. the jbd2 commit-block rewrite an
    /// `fsync` forces) without clobbering live data structures.
    pub fn charge_write_traffic(&self, len: usize, cat: TimeCategory) {
        let ns = self.cost.pm_write_cost(len);
        self.clock.advance(ns);
        self.stats.add_time(cat, ns);
        self.stats.add_bytes_written(cat, len as u64);
    }

    /// Writes without charging simulated time (bulk test setup, mkfs-style
    /// initialization whose cost the experiments do not measure).
    pub fn write_uncharged(&self, offset: u64, data: &[u8]) {
        self.check_range(offset, data.len());
        self.write_volatile_view(offset, data);
        if self.track_persistence {
            self.mark_lines(offset, data.len(), PersistMode::NonTemporal);
        }
    }

    fn write_volatile_view(&self, offset: u64, data: &[u8]) {
        let mut done = 0usize;
        while done < data.len() {
            let abs = offset as usize + done;
            let shard_idx = abs / SHARD_SIZE;
            let within = abs % SHARD_SIZE;
            let n = (SHARD_SIZE - within).min(data.len() - done);
            let mut shard = self.shards[shard_idx].write();
            shard.data[within..within + n].copy_from_slice(&data[done..done + n]);
            done += n;
        }
    }

    fn mark_lines(&self, offset: u64, len: usize, mode: PersistMode) {
        if len == 0 {
            return;
        }
        let first = offset / CACHE_LINE as u64;
        let last = (offset + len as u64 - 1) / CACHE_LINE as u64;
        let mut tracker = self.tracker.lock();
        for line in first..=last {
            match mode {
                PersistMode::Temporal => {
                    tracker.dirty.insert(line);
                }
                PersistMode::NonTemporal => {
                    tracker.dirty.remove(&line);
                    tracker.pending.insert(line);
                }
            }
        }
    }

    /// Flushes (`clwb`) every cache line overlapping `[offset, offset+len)`:
    /// dirty lines become pending and will persist at the next fence.
    /// Charges one `clwb` per line touched.
    pub fn flush(&self, offset: u64, len: usize, cat: TimeCategory) {
        if len == 0 {
            return;
        }
        self.check_range(offset, len);
        let first = offset / CACHE_LINE as u64;
        let last = (offset + len as u64 - 1) / CACHE_LINE as u64;
        let lines = (last - first + 1) as usize;
        if self.track_persistence {
            let mut tracker = self.tracker.lock();
            for line in first..=last {
                if tracker.dirty.remove(&line) {
                    tracker.pending.insert(line);
                } else {
                    // Flushing a clean or already-pending line is legal and
                    // keeps it pending if it was pending.
                    if !tracker.pending.contains(&line) {
                        // Clean line: flush is a no-op for persistence but
                        // still costs time; nothing to track.
                    }
                }
            }
        }
        let ns = lines as f64 * self.cost.clwb_ns;
        self.clock.advance(ns);
        self.stats.add_time(cat, ns);
        for _ in 0..lines {
            self.stats.add_flush();
        }
    }

    /// Issues an ordering fence (`sfence`): all pending lines reach the
    /// persistence domain.  Charges one fence.
    ///
    /// Every fence has a 0-based ordinal; when a [`FenceHook`] is
    /// installed it runs first, *before* pending lines drain, so a crash
    /// image captured inside it reflects a power failure at exactly this
    /// boundary.
    pub fn fence(&self, cat: TimeCategory) {
        let ordinal = self.fence_seq.fetch_add(1, Ordering::Relaxed);
        if self.fence_hook_armed.load(Ordering::Acquire) {
            let hook = self.fence_hook.0.lock().clone();
            if let Some(hook) = hook {
                hook(self, ordinal);
            }
        }
        if self.track_persistence {
            let pending: Vec<u64> = {
                let mut tracker = self.tracker.lock();
                tracker.pending.drain().collect()
            };
            for line in pending {
                self.persist_line(line);
            }
        }
        self.clock.advance(self.cost.sfence_ns);
        self.stats.add_time(cat, self.cost.sfence_ns);
        self.stats.add_fence();
    }

    fn persist_line(&self, line: u64) {
        let abs = line as usize * CACHE_LINE;
        if abs >= self.size {
            return;
        }
        let shard_idx = abs / SHARD_SIZE;
        let within = abs % SHARD_SIZE;
        let mut guard = self.shards[shard_idx].write();
        let shard: &mut Shard = &mut guard;
        // A cache line never spans shards because SHARD_SIZE is a multiple
        // of CACHE_LINE.
        let n = CACHE_LINE.min(SHARD_SIZE - within);
        if let Some(shadow) = shard.shadow.as_mut() {
            shadow[within..within + n].copy_from_slice(&shard.data[within..within + n]);
        }
    }

    /// Convenience: flush the range and fence, i.e. make `[offset,
    /// offset+len)` persistent.  Equivalent to `clwb*; sfence`.
    pub fn persist(&self, offset: u64, len: usize, cat: TimeCategory) {
        self.flush(offset, len, cat);
        self.fence(cat);
    }

    /// Writes zeroes over the range.
    pub fn zero(&self, offset: u64, len: usize, mode: PersistMode, cat: TimeCategory) {
        const CHUNK: usize = 64 * 1024;
        let zeros = [0u8; CHUNK];
        let mut done = 0usize;
        while done < len {
            let n = CHUNK.min(len - done);
            self.write(offset + done as u64, &zeros[..n], mode, cat);
            done += n;
        }
    }

    /// Copies `len` bytes from `src` to `dst` within the device, charging a
    /// read and a (non-temporal) write.
    pub fn copy_within(&self, src: u64, dst: u64, len: usize, cat: TimeCategory) {
        const CHUNK: usize = 64 * 1024;
        let mut buf = vec![0u8; CHUNK.min(len)];
        let mut done = 0usize;
        while done < len {
            let n = CHUNK.min(len - done);
            self.read(
                src + done as u64,
                &mut buf[..n],
                AccessPattern::Sequential,
                cat,
            );
            self.write(dst + done as u64, &buf[..n], PersistMode::NonTemporal, cat);
            done += n;
        }
    }

    /// Injects a crash: the volatile view is replaced by the persistent
    /// image according to the [`CrashPolicy`].  After this call the device
    /// contents are exactly what a real machine would find on PM after a
    /// power failure, and recovery code can be exercised.
    ///
    /// # Panics
    ///
    /// Panics if the device was built with persistence tracking disabled —
    /// crashing such a device is always a test-configuration bug.
    pub fn crash(&self) {
        let image = self.capture_crash_image();
        self.restore_crash_image(&image);
    }

    /// Computes the post-crash device contents under the [`CrashPolicy`]
    /// *without* perturbing the live device, so a concurrent workload can
    /// keep running after the capture (the crash-point fuzzer captures one
    /// image per fence boundary from inside a [`FenceHook`]).
    ///
    /// Ordering contract: the persistence tracker's lock is held across
    /// the whole capture — ledger-length snapshot first, then every shard
    /// byte.  Every path that makes bytes durable (a store marking its
    /// lines, a fence draining them) goes through that lock, so nothing
    /// can become durable between the ledger cut and the byte copy, and
    /// declaration sites declare only *after* their durability fence.
    /// Together that makes the image consistent with its ledger prefix:
    /// every included promise was durable before the capture began, and
    /// no operation declared after the cut can have leaked effects into
    /// the image.  At worst the image misses a promise that raced the
    /// capture — the conservative direction.
    ///
    /// # Panics
    ///
    /// Panics if the device was built with persistence tracking disabled —
    /// crash-imaging such a device is always a test-configuration bug.
    pub fn capture_crash_image(&self) -> CrashImage {
        assert!(
            self.track_persistence,
            "capture_crash_image() requires a device built with track_persistence(true)"
        );
        // Quiesce the device: writers block in `mark_lines`, fences block
        // at their drain, until the capture finishes.
        let tracker = self.tracker.lock();
        let ledger_len = self.ledger.len();
        let fence_ordinal = self.fence_seq.load(Ordering::Relaxed);
        // Unpersisted (dirty or pending) lines grouped by shard; only the
        // torn-write model needs them.
        let mut torn_by_shard: HashMap<usize, Vec<u64>> = HashMap::new();
        if let CrashPolicy::TornWrites { .. } = self.crash_policy {
            for &line in tracker.dirty.iter().chain(tracker.pending.iter()) {
                let abs = line as usize * CACHE_LINE;
                if abs < self.size {
                    torn_by_shard
                        .entry(abs / SHARD_SIZE)
                        .or_default()
                        .push(line);
                }
            }
        }
        let mut torn_lines = 0u64;
        let mut shards = Vec::with_capacity(self.shards.len());
        for (idx, shard) in self.shards.iter().enumerate() {
            let s = shard.read();
            let mut img: Box<[u8]> = match self.crash_policy {
                CrashPolicy::KeepAll => s.data.clone(),
                CrashPolicy::LoseUnflushed | CrashPolicy::TornWrites { .. } => s
                    .shadow
                    .as_ref()
                    .expect("persistence tracking enabled")
                    .clone(),
            };
            if let CrashPolicy::TornWrites { seed } = self.crash_policy {
                for &line in torn_by_shard.get(&idx).into_iter().flatten() {
                    let within = line as usize * CACHE_LINE - idx * SHARD_SIZE;
                    let n = CACHE_LINE.min(SHARD_SIZE - within);
                    let torn = tear_line(
                        seed,
                        line,
                        &img[within..within + n],
                        &s.data[within..within + n],
                    );
                    img[within..within + n].copy_from_slice(&torn);
                    torn_lines += 1;
                }
            }
            shards.push(img);
        }
        self.stats.add_crash_capture();
        self.stats.add_torn_lines(torn_lines);
        CrashImage {
            size: self.size,
            fence_ordinal,
            ledger_len,
            torn_lines,
            shards,
        }
    }

    /// Overwrites this device's contents (volatile view *and* persistent
    /// image) with a captured [`CrashImage`] and clears persistence
    /// tracking — the state a real machine finds on PM after the power
    /// failure the image models.  The device must have the same capacity
    /// the image was captured from.
    pub fn restore_crash_image(&self, image: &CrashImage) {
        assert_eq!(
            image.size, self.size,
            "crash image size {} does not match device size {}",
            image.size, self.size
        );
        for (shard, img) in self.shards.iter().zip(&image.shards) {
            let mut s = shard.write();
            s.data.copy_from_slice(img);
            if let Some(shadow) = s.shadow.as_mut() {
                shadow.copy_from_slice(img);
            }
        }
        let mut tracker = self.tracker.lock();
        tracker.dirty.clear();
        tracker.pending.clear();
    }

    /// Installs (or removes, with `None`) the fence interceptor.  See
    /// [`FenceHook`] for the calling contract.
    pub fn set_fence_hook(&self, hook: Option<FenceHook>) {
        let armed = hook.is_some();
        *self.fence_hook.0.lock() = hook;
        self.fence_hook_armed.store(armed, Ordering::Release);
    }

    /// Number of fences issued so far (the next fence gets this ordinal).
    pub fn fence_ordinal(&self) -> u64 {
        self.fence_seq.load(Ordering::Relaxed)
    }

    /// The declared-durability promise ledger attached to this device.
    pub fn ledger(&self) -> &PromiseLedger {
        &self.ledger
    }

    /// Records a durability promise on the ledger (no-op returning `None`
    /// unless the ledger is enabled).  Call only *after* the fence /
    /// journal commit / epoch publish that establishes the promised
    /// durability — see the [`crate::oracle`] soundness rule.
    pub fn declare(&self, promise: Promise) -> Option<u64> {
        let seq = self.ledger.declare(promise)?;
        self.stats.add_promise_declared();
        Some(seq)
    }

    /// Marks `[offset, offset+len)` as failing media: subsequent
    /// [`PmemDevice::try_read`] calls overlapping the range return
    /// [`MediaError`], and [`PmemDevice::try_read_view`] refuses the range
    /// so callers fall back to their checked owned-read path.  Ranges
    /// accumulate until [`PmemDevice::clear_poison`].
    pub fn poison_range(&self, offset: u64, len: u64) {
        self.check_range(offset, len as usize);
        self.poison.lock().push((offset, len));
        self.poison_armed.store(true, Ordering::Release);
    }

    /// Removes every poisoned range.
    pub fn clear_poison(&self) {
        self.poison.lock().clear();
        self.poison_armed.store(false, Ordering::Release);
    }

    /// First poisoned byte overlapping `[offset, offset+len)`, if any.
    fn poison_hit(&self, offset: u64, len: usize) -> Option<u64> {
        if len == 0 || !self.poison_armed.load(Ordering::Acquire) {
            return None;
        }
        let end = offset + len as u64;
        let ranges = self.poison.lock();
        ranges
            .iter()
            .filter(|&&(s, l)| offset < s + l && s < end)
            .map(|&(s, _)| s.max(offset))
            .min()
    }

    /// Like [`PmemDevice::read`], but fails with [`MediaError`] when the
    /// range overlaps a poisoned region.  File-system data paths read
    /// through this so injected media errors propagate to their callers
    /// instead of silently serving bytes.
    pub fn try_read(
        &self,
        offset: u64,
        buf: &mut [u8],
        pattern: AccessPattern,
        cat: TimeCategory,
    ) -> Result<(), MediaError> {
        if let Some(bad) = self.poison_hit(offset, buf.len()) {
            self.stats.add_media_read_error();
            return Err(MediaError { offset: bad });
        }
        self.read(offset, buf, pattern, cat);
        Ok(())
    }

    /// Number of cache lines currently written but not yet persistent
    /// (dirty or pending).  Used by tests asserting that a code path left
    /// nothing unflushed.
    pub fn unpersisted_lines(&self) -> usize {
        let tracker = self.tracker.lock();
        tracker.dirty.len() + tracker.pending.len()
    }
}

/// A media read error returned by [`PmemDevice::try_read`] when the range
/// overlaps a [poisoned](PmemDevice::poison_range) region — the emulated
/// equivalent of an uncorrectable-ECC machine check on a PM load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediaError {
    /// Device offset of the first failing byte within the attempted read.
    pub offset: u64,
}

impl std::fmt::Display for MediaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "media read error at device offset {}", self.offset)
    }
}

impl std::error::Error for MediaError {}

/// A zero-copy borrow of a contiguous device range, returned by
/// [`PmemDevice::try_read_view`].
///
/// Dereferences to the bytes as they are *now* — the volatile view, exactly
/// what a load from a DAX mapping observes.  The view holds a shard read
/// lock; writers to the same 1 MiB shard block while it is alive.
pub struct PmemView<'a> {
    guard: RwLockReadGuard<'a, Shard>,
    start: usize,
    len: usize,
}

impl Deref for PmemView<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.guard.data[self.start..self.start + self.len]
    }
}

impl std::fmt::Debug for PmemView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmemView").field("len", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_device() -> Arc<PmemDevice> {
        PmemBuilder::new(4 * SHARD_SIZE)
            .cost_model(CostModel::calibrated())
            .build()
    }

    #[test]
    fn read_back_what_was_written() {
        let dev = small_device();
        let data = vec![0xABu8; 300];
        dev.write(
            1000,
            &data,
            PersistMode::NonTemporal,
            TimeCategory::UserData,
        );
        let mut out = vec![0u8; 300];
        dev.read(
            1000,
            &mut out,
            AccessPattern::Sequential,
            TimeCategory::UserData,
        );
        assert_eq!(out, data);
    }

    #[test]
    fn writes_spanning_shards_round_trip() {
        let dev = small_device();
        let offset = SHARD_SIZE as u64 - 100;
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        dev.write(
            offset,
            &data,
            PersistMode::NonTemporal,
            TimeCategory::UserData,
        );
        let mut out = vec![0u8; 200];
        dev.read_uncharged(offset, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn out_of_range_access_panics() {
        let dev = small_device();
        let size = dev.size() as u64;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dev.write_uncharged(size - 10, &[0u8; 20]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn temporal_store_is_lost_on_crash_without_flush() {
        let dev = small_device();
        dev.write(0, &[7u8; 64], PersistMode::Temporal, TimeCategory::UserData);
        dev.crash();
        let mut out = [0xFFu8; 64];
        dev.read_uncharged(0, &mut out);
        assert_eq!(out, [0u8; 64], "unflushed temporal store must not survive");
    }

    #[test]
    fn temporal_store_survives_after_flush_and_fence() {
        let dev = small_device();
        dev.write(
            128,
            &[9u8; 64],
            PersistMode::Temporal,
            TimeCategory::UserData,
        );
        dev.flush(128, 64, TimeCategory::UserData);
        dev.fence(TimeCategory::UserData);
        dev.crash();
        let mut out = [0u8; 64];
        dev.read_uncharged(128, &mut out);
        assert_eq!(out, [9u8; 64]);
    }

    #[test]
    fn nt_store_survives_after_fence_only() {
        let dev = small_device();
        dev.write(
            256,
            &[5u8; 64],
            PersistMode::NonTemporal,
            TimeCategory::UserData,
        );
        dev.fence(TimeCategory::UserData);
        dev.crash();
        let mut out = [0u8; 64];
        dev.read_uncharged(256, &mut out);
        assert_eq!(out, [5u8; 64]);
    }

    #[test]
    fn nt_store_without_fence_is_lost() {
        let dev = small_device();
        dev.write(
            320,
            &[4u8; 64],
            PersistMode::NonTemporal,
            TimeCategory::UserData,
        );
        dev.crash();
        let mut out = [9u8; 64];
        dev.read_uncharged(320, &mut out);
        assert_eq!(out, [0u8; 64]);
    }

    #[test]
    fn keep_all_crash_policy_preserves_unflushed_data() {
        let dev = PmemBuilder::new(SHARD_SIZE)
            .crash_policy(CrashPolicy::KeepAll)
            .build();
        dev.write(
            64,
            &[3u8; 64],
            PersistMode::Temporal,
            TimeCategory::UserData,
        );
        dev.crash();
        let mut out = [0u8; 64];
        dev.read_uncharged(64, &mut out);
        assert_eq!(out, [3u8; 64]);
    }

    #[test]
    fn write_charges_calibrated_cost() {
        let dev = small_device();
        let before = dev.clock().now_ns_f64();
        dev.write(
            0,
            &[0u8; 4096],
            PersistMode::NonTemporal,
            TimeCategory::UserData,
        );
        let elapsed = dev.clock().now_ns_f64() - before;
        assert!(
            (elapsed - 671.0).abs() < 10.0,
            "4 KiB write cost was {elapsed}"
        );
    }

    #[test]
    fn stats_classify_traffic_by_category() {
        let dev = small_device();
        dev.write(
            0,
            &[0u8; 4096],
            PersistMode::NonTemporal,
            TimeCategory::UserData,
        );
        dev.write(
            8192,
            &[0u8; 64],
            PersistMode::NonTemporal,
            TimeCategory::Journal,
        );
        let snap = dev.stats().snapshot();
        assert_eq!(snap.written(TimeCategory::UserData), 4096);
        assert_eq!(snap.written(TimeCategory::Journal), 64);
        assert!(snap.software_overhead_ns() > 0.0);
    }

    #[test]
    fn unpersisted_lines_tracks_outstanding_writes() {
        let dev = small_device();
        assert_eq!(dev.unpersisted_lines(), 0);
        dev.write(
            0,
            &[1u8; 256],
            PersistMode::Temporal,
            TimeCategory::UserData,
        );
        assert_eq!(dev.unpersisted_lines(), 4);
        dev.flush(0, 256, TimeCategory::UserData);
        assert_eq!(dev.unpersisted_lines(), 4); // pending, not yet fenced
        dev.fence(TimeCategory::UserData);
        assert_eq!(dev.unpersisted_lines(), 0);
    }

    #[test]
    fn copy_within_moves_data_and_charges_both_sides() {
        let dev = small_device();
        let payload: Vec<u8> = (0..1024).map(|i| (i % 251) as u8).collect();
        dev.write_uncharged(0, &payload);
        let before = dev.stats().snapshot();
        dev.copy_within(0, 100_000, 1024, TimeCategory::Metadata);
        let mut out = vec![0u8; 1024];
        dev.read_uncharged(100_000, &mut out);
        assert_eq!(out, payload);
        let delta = dev.stats().snapshot().delta_since(&before);
        assert_eq!(delta.bytes_read[1], 1024); // Metadata index
        assert_eq!(delta.bytes_written[1], 1024);
    }

    #[test]
    fn read_view_borrows_without_copy_and_counts_zero_copy_bytes() {
        let dev = small_device();
        let data: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
        dev.write_uncharged(2048, &data);
        let before = dev.stats().snapshot();
        let view = dev
            .try_read_view(2048, 300, AccessPattern::Sequential, TimeCategory::UserData)
            .expect("in-shard range");
        assert_eq!(&*view, &data[..]);
        drop(view);
        let delta = dev.stats().snapshot().delta_since(&before);
        assert_eq!(delta.zero_copy_read_bytes, 300);
        assert_eq!(delta.bytes_read[0], 300); // UserData index
    }

    #[test]
    fn read_view_refuses_shard_straddling_and_empty_ranges() {
        let dev = small_device();
        assert!(dev
            .try_read_view(
                SHARD_SIZE as u64 - 10,
                20,
                AccessPattern::Sequential,
                TimeCategory::UserData
            )
            .is_none());
        assert!(dev
            .try_read_view(0, 0, AccessPattern::Sequential, TimeCategory::UserData)
            .is_none());
    }

    #[test]
    fn zero_clears_the_range() {
        let dev = small_device();
        dev.write_uncharged(500, &[0xEEu8; 1000]);
        dev.zero(500, 1000, PersistMode::NonTemporal, TimeCategory::Metadata);
        let mut out = vec![0xAAu8; 1000];
        dev.read_uncharged(500, &mut out);
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "track_persistence")]
    fn crash_without_tracking_panics() {
        let dev = PmemBuilder::new(SHARD_SIZE)
            .track_persistence(false)
            .build();
        dev.crash();
    }

    #[test]
    fn fence_hook_sees_each_ordinal_before_pending_lines_drain() {
        let dev = small_device();
        dev.write(
            0,
            &[1u8; 64],
            PersistMode::NonTemporal,
            TimeCategory::UserData,
        );
        let seen: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        dev.set_fence_hook(Some(Arc::new(move |d: &PmemDevice, ordinal| {
            seen2.lock().push((ordinal, d.unpersisted_lines()));
        })));
        dev.fence(TimeCategory::UserData);
        dev.fence(TimeCategory::UserData);
        dev.set_fence_hook(None);
        dev.fence(TimeCategory::UserData);
        let seen = seen.lock();
        // Ordinal 0 ran with the NT line still unpersisted (hook precedes
        // the drain); ordinal 1 saw nothing outstanding; ordinal 2 was
        // after the hook was removed.
        assert_eq!(&*seen, &[(0, 1), (1, 0)]);
        assert_eq!(dev.fence_ordinal(), 3);
    }

    #[test]
    fn captured_image_restores_into_a_fresh_device() {
        let dev = small_device();
        dev.write(
            4096,
            &[0xC3u8; 128],
            PersistMode::NonTemporal,
            TimeCategory::UserData,
        );
        dev.fence(TimeCategory::UserData);
        // Unfenced write after the durable one: must not appear in the image.
        dev.write(
            8192,
            &[0x77u8; 64],
            PersistMode::Temporal,
            TimeCategory::UserData,
        );
        let image = dev.capture_crash_image();
        // The live device is unperturbed by the capture.
        let mut live = [0u8; 64];
        dev.read_uncharged(8192, &mut live);
        assert_eq!(live, [0x77u8; 64]);

        let fresh = PmemBuilder::new(dev.size()).build();
        fresh.restore_crash_image(&image);
        let mut out = [0u8; 128];
        fresh.read_uncharged(4096, &mut out);
        assert_eq!(out, [0xC3u8; 128]);
        // The unfenced temporal store must not have made it into the image.
        let mut lost = [0xFFu8; 64];
        fresh.read_uncharged(8192, &mut lost);
        assert_eq!(lost, [0u8; 64]);
        assert_eq!(image.fence_ordinal(), 1);
    }

    #[test]
    fn torn_writes_preserve_prefix_or_suffix_per_line() {
        let seed = 0xDEAD_BEEF;
        let dev = PmemBuilder::new(SHARD_SIZE)
            .crash_policy(CrashPolicy::TornWrites { seed })
            .build();
        let old = [0x11u8; 256];
        dev.write(0, &old, PersistMode::NonTemporal, TimeCategory::UserData);
        dev.fence(TimeCategory::UserData);
        let new = [0x99u8; 256];
        dev.write(0, &new, PersistMode::Temporal, TimeCategory::UserData);
        let image = dev.capture_crash_image();
        assert_eq!(image.torn_lines(), 4);
        dev.restore_crash_image(&image);
        let mut out = [0u8; 256];
        dev.read_uncharged(0, &mut out);
        for line in 0..4u64 {
            let lo = line as usize * CACHE_LINE;
            let got = &out[lo..lo + CACHE_LINE];
            let expect =
                crate::crash::tear_line(seed, line, &old[..CACHE_LINE], &new[..CACHE_LINE]);
            assert_eq!(got, &expect[..], "line {line}");
        }
    }

    #[test]
    fn poisoned_ranges_fail_checked_reads_until_cleared() {
        let dev = small_device();
        dev.write_uncharged(10_000, &[5u8; 512]);
        let mut buf = [0u8; 64];
        assert!(dev
            .try_read(
                10_000,
                &mut buf,
                AccessPattern::Sequential,
                TimeCategory::UserData
            )
            .is_ok());
        dev.poison_range(10_100, 50);
        let err = dev
            .try_read(
                10_000,
                &mut [0u8; 512],
                AccessPattern::Sequential,
                TimeCategory::UserData,
            )
            .unwrap_err();
        assert_eq!(err.offset, 10_100);
        assert!(err.to_string().contains("media read error"));
        // Non-overlapping reads still succeed, and the zero-copy path
        // refuses the poisoned range so callers hit the checked fallback.
        assert!(dev
            .try_read(
                20_000,
                &mut buf,
                AccessPattern::Sequential,
                TimeCategory::UserData
            )
            .is_ok());
        assert!(dev
            .try_read_view(
                10_050,
                200,
                AccessPattern::Sequential,
                TimeCategory::UserData
            )
            .is_none());
        dev.clear_poison();
        assert!(dev
            .try_read(
                10_000,
                &mut [0u8; 512],
                AccessPattern::Sequential,
                TimeCategory::UserData
            )
            .is_ok());
        assert_eq!(dev.stats().snapshot().media_read_errors, 1);
    }

    #[test]
    fn capture_snapshots_ledger_length_before_bytes() {
        let dev = small_device();
        dev.ledger().set_enabled(true);
        dev.declare(Promise::EpochDurable { epoch: 1 });
        let image = dev.capture_crash_image();
        dev.declare(Promise::EpochDurable { epoch: 2 });
        assert_eq!(image.ledger_len(), 1);
        assert_eq!(dev.ledger().records_up_to(image.ledger_len()).len(), 1);
        assert_eq!(dev.stats().snapshot().promises_declared, 2);
        assert_eq!(dev.stats().snapshot().crash_captures, 1);
    }
}
