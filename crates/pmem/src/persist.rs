//! Store and persistence semantics.
//!
//! Persistent memory is written either with regular (temporal) stores that
//! land in the CPU cache and must later be flushed (`clwb`) and ordered
//! (`sfence`) to become persistent, or with non-temporal stores (`movnt`)
//! that bypass the cache and become persistent at the next fence (§2.1 of
//! the paper).  The emulated device models both.

/// How a store reaches the persistence domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PersistMode {
    /// Regular store: visible immediately, persistent only after an explicit
    /// flush of the affected cache lines followed by a fence.
    Temporal,
    /// Non-temporal store (`movnt`): bypasses the cache; persistent at the
    /// next fence without a separate flush.  SplitFS uses these for data
    /// writes and operation-log entries.
    NonTemporal,
}

/// Access pattern of a read, which determines the latency charged
/// (Table 2: sequential 169 ns vs random 305 ns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// The read continues a streaming access.
    Sequential,
    /// The read jumps to an unrelated location.
    Random,
}

impl AccessPattern {
    /// Returns `true` for [`AccessPattern::Sequential`].
    pub fn is_sequential(self) -> bool {
        matches!(self, AccessPattern::Sequential)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_pattern_helpers() {
        assert!(AccessPattern::Sequential.is_sequential());
        assert!(!AccessPattern::Random.is_sequential());
    }

    #[test]
    fn persist_modes_are_distinct() {
        assert_ne!(PersistMode::Temporal, PersistMode::NonTemporal);
    }
}
