//! The declared-durability oracle's promise ledger.
//!
//! Crash-point fuzzing needs ground truth: when a crash image is captured
//! at an arbitrary fence boundary, which guarantees had the file system
//! already handed out?  The ledger records every such **promise** — an
//! `fsync` that returned, an `await_epoch` that was satisfied, a relink
//! batch whose journal transaction committed, a lease grant that was
//! journaled — in declaration order.  The fuzzer snapshots the ledger
//! length *before* copying device shards into a crash image, so every
//! recorded promise was established strictly before the captured state;
//! recovery from that image must honor all of them.
//!
//! The ledger lives in `pmem` (not in a file-system crate) because every
//! layer that makes promises — splitfs, kernelfs, aio — already holds the
//! device, and the device is the one object shared across instances.
//! Declaration sites run on production hot paths, so the whole mechanism
//! is behind one relaxed atomic load when disabled.
//!
//! Soundness rule for declaration sites: declare **after** the fence (or
//! journal commit, or epoch publish) that establishes the durability being
//! promised, never before.  The capture-side ordering (ledger length
//! first, shard bytes second) then guarantees the oracle is conservative:
//! it can miss a promise that raced the capture, but it can never check a
//! promise whose durability point had not been reached.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

/// A durability guarantee the system has handed to its caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Promise {
    /// The first `len` bytes of the file at `path` are durable and hash to
    /// `hash` (see [`content_hash`]).  Declared by workloads/tests from
    /// their *own* expected bytes after a durability call returns — the
    /// oracle never trusts the device to define what should be on the
    /// device.
    FileDurable {
        /// Absolute file path.
        path: String,
        /// Number of durable bytes promised.
        len: u64,
        /// [`content_hash`] of those bytes.
        hash: u64,
    },
    /// All content promises previously made for `path` are void (the file
    /// is about to be unlinked, renamed away, or rewritten).  Declared
    /// *before* the voiding operation starts so a crash mid-operation
    /// cannot strand a stale content promise.
    FileRetracted {
        /// Absolute file path whose content promises no longer bind.
        path: String,
    },
    /// After recovery, `path` must exist (`exists == true`) or must not
    /// (`exists == false`).  Declared after a journaled metadata operation
    /// (create+fsync, rename, unlink) returns.
    PathDurable {
        /// Absolute path.
        path: String,
        /// Whether the path must resolve after recovery.
        exists: bool,
    },
    /// `fsync`/`fsync_many` returned for the file — counted for
    /// classification (the binding content check rides on
    /// [`Promise::FileDurable`], which carries expected bytes).
    FsyncReturned {
        /// Declaring instance.
        instance: u32,
        /// Inode of the fsynced file.
        ino: u64,
        /// File size at the time the call returned.
        size: u64,
    },
    /// Every ring operation with epoch `<= epoch` is durable (an
    /// `await_epoch` call was satisfied, or a batch publish advanced the
    /// published epoch past it).
    EpochDurable {
        /// The durability epoch that is now stable.
        epoch: u64,
    },
    /// A relink batch's journal transaction committed and its data fence
    /// completed.
    RelinkCommitted {
        /// Declaring instance.
        instance: u32,
        /// Number of staged extents retired by the batch.
        ops: u64,
    },
    /// An operation-log group commit fenced entries up to `seq`.
    OplogCommitted {
        /// Declaring instance.
        instance: u32,
        /// Highest log sequence number covered by the commit.
        seq: u64,
    },
    /// A lease grant (`acquired == true`) or release (`false`) for
    /// `instance` was journaled and persisted.  After recovery the latest
    /// journaled state must hold: a granted lease is either still active
    /// or surfaced as a recoverable orphan; a released one is neither.
    LeaseJournaled {
        /// Instance the lease belongs to.
        instance: u32,
        /// `true` for grant, `false` for release.
        acquired: bool,
    },
}

impl Promise {
    /// Stable label for reports and classification tallies.
    pub fn kind_label(&self) -> &'static str {
        match self {
            Promise::FileDurable { .. } => "file_durable",
            Promise::FileRetracted { .. } => "file_retracted",
            Promise::PathDurable { .. } => "path_durable",
            Promise::FsyncReturned { .. } => "fsync_returned",
            Promise::EpochDurable { .. } => "epoch_durable",
            Promise::RelinkCommitted { .. } => "relink_committed",
            Promise::OplogCommitted { .. } => "oplog_committed",
            Promise::LeaseJournaled { .. } => "lease_journaled",
        }
    }
}

/// One ledger entry: a promise plus its declaration-order sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromiseRecord {
    /// Position in declaration order (0-based, dense).
    pub seq: u64,
    /// The promise itself.
    pub promise: Promise,
}

/// An append-only, declaration-ordered log of [`Promise`]s.
///
/// Disabled by default; production paths pay one relaxed atomic load.
#[derive(Debug, Default)]
pub struct PromiseLedger {
    enabled: AtomicBool,
    records: Mutex<Vec<PromiseRecord>>,
}

impl PromiseLedger {
    /// Turns recording on or off.  Disabling does not clear prior records.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    /// Whether declarations are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records a promise; returns its sequence number, or `None` when the
    /// ledger is disabled.
    pub fn declare(&self, promise: Promise) -> Option<u64> {
        if !self.is_enabled() {
            return None;
        }
        let mut records = self.records.lock();
        let seq = records.len() as u64;
        records.push(PromiseRecord { seq, promise });
        Some(seq)
    }

    /// Number of records declared so far.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether no promise has been declared.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The first `n` records in declaration order (clamped to the current
    /// length).  Used by the fuzzer with the length snapshotted at crash
    /// capture.
    pub fn records_up_to(&self, n: usize) -> Vec<PromiseRecord> {
        let records = self.records.lock();
        records[..n.min(records.len())].to_vec()
    }

    /// Every record in declaration order.
    pub fn records(&self) -> Vec<PromiseRecord> {
        self.records.lock().clone()
    }

    /// Drops all records (recording state is unchanged).
    pub fn clear(&self) {
        self.records.lock().clear();
    }
}

/// FNV-1a content hash used by [`Promise::FileDurable`].  Declaration sites
/// and the oracle checker must agree on this function; it is exported so
/// both compute it from their own byte views.
pub fn content_hash(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ledger_records_nothing() {
        let ledger = PromiseLedger::default();
        assert_eq!(ledger.declare(Promise::EpochDurable { epoch: 1 }), None);
        assert!(ledger.is_empty());
    }

    #[test]
    fn declaration_order_assigns_dense_seqs() {
        let ledger = PromiseLedger::default();
        ledger.set_enabled(true);
        assert_eq!(ledger.declare(Promise::EpochDurable { epoch: 1 }), Some(0));
        assert_eq!(
            ledger.declare(Promise::PathDurable {
                path: "/a".into(),
                exists: true,
            }),
            Some(1)
        );
        let records = ledger.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].seq, 1);
        assert_eq!(ledger.records_up_to(1).len(), 1);
        assert_eq!(ledger.records_up_to(99).len(), 2);
    }

    #[test]
    fn content_hash_is_order_sensitive() {
        assert_ne!(content_hash(b"ab"), content_hash(b"ba"));
        assert_ne!(content_hash(b""), content_hash(b"\0"));
        assert_eq!(content_hash(b"splitfs"), content_hash(b"splitfs"));
    }
}
