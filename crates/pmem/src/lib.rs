//! Emulated persistent memory (PM) for the SplitFS reproduction.
//!
//! The SplitFS paper evaluates on Intel Optane DC Persistent Memory Modules.
//! This crate provides a software stand-in with the three properties the
//! paper's measurements depend on:
//!
//! 1. **Byte addressability with cache-line persistence semantics** —
//!    stores become persistent only after an explicit flush (`clwb`) and
//!    ordering fence (`sfence`), or when issued as non-temporal stores
//!    followed by a fence ([`device::PmemDevice`], [`persist`]).
//! 2. **Crash behaviour** — on a simulated crash, cache lines that were
//!    written but never flushed+fenced are lost; everything that reached the
//!    persistence domain survives ([`device::PmemDevice::crash`]).
//! 3. **A calibrated cost model** — every device access and every software
//!    action charges simulated nanoseconds to a [`clock::SimClock`] through
//!    [`cost::CostModel`], decomposed by [`stats::TimeCategory`] so that the
//!    paper's definition of *software overhead* (total time minus the time
//!    spent accessing user data on the device, §5.7) can be computed exactly.
//!
//! The device is deliberately simple: a sharded, lock-protected byte array.
//! File systems built on top of it (kernelfs, baselines, splitfs) implement
//! their real data structures — allocators, journals, logs, extent trees —
//! against this address space, so the *code paths* of the paper are
//! exercised even though the medium is DRAM.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod cost;
pub mod crash;
pub mod device;
pub mod oracle;
pub mod persist;
pub mod stats;
pub mod tier;

pub use clock::SimClock;
pub use cost::CostModel;
pub use crash::CrashPolicy;
pub use device::{CrashImage, FenceHook, MediaError, PmemBuilder, PmemDevice, PmemView};
pub use oracle::{content_hash, Promise, PromiseLedger, PromiseRecord};
pub use persist::{AccessPattern, PersistMode};
pub use stats::{Stats, StatsSnapshot, TimeCategory};
pub use tier::{DeviceShape, TieredDevice, CAP_BLOCK};

/// Size of a CPU cache line in bytes.  Persistence is tracked at this
/// granularity, matching the 64 B unit the paper's logging protocol is
/// designed around.
pub const CACHE_LINE: usize = 64;

/// Size of a small (4 KiB) page, the unit of page faults on the DAX mmap
/// path.
pub const PAGE_4K: usize = 4096;

/// Size of a huge (2 MiB) page.  SplitFS memory-maps files in 2 MiB chunks
/// so it can use huge pages (§3.6, §4).
pub const PAGE_2M: usize = 2 * 1024 * 1024;
