//! Time and write-volume accounting.
//!
//! The SplitFS paper's central metric is *software overhead*: the time a
//! file-system operation takes minus the time spent actually reading or
//! writing the user's data on the PM device (§5.7).  To compute this the
//! device and the file systems classify every charge into a
//! [`TimeCategory`]; [`Stats`] accumulates per-category simulated time and
//! per-category bytes written (the latter gives write amplification and PM
//! wear, which the paper uses when comparing against Strata).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    /// Per-category simulated picoseconds charged **by the current
    /// thread**, across every [`Stats`] instance (mirrors the clock's
    /// thread-time tee).  The observability layer reads deltas of this
    /// around an operation span to attribute the thread's charges to
    /// that operation; absolute values are meaningless across threads.
    static THREAD_CAT_PICOS: [Cell<u64>; 5] =
        const { [Cell::new(0), Cell::new(0), Cell::new(0), Cell::new(0), Cell::new(0)] };
}

/// What a charge of simulated time (or a burst of written bytes) was for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeCategory {
    /// Reading or writing the application's own data bytes on the device.
    /// This is the "time spent actually accessing data on the PM device"
    /// term in the paper's software-overhead definition.
    UserData,
    /// File-system metadata on the device: inodes, allocator bitmaps,
    /// directory blocks, extent trees.
    Metadata,
    /// Journal / log writes performed by the file system for crash
    /// consistency (jbd2 transactions, NOVA inode logs, PMFS undo journal,
    /// Strata private logs).
    Journal,
    /// SplitFS operation-log writes (64 B logical redo entries).
    OpLog,
    /// Pure software time: kernel traps, VFS path handling, allocation
    /// decisions, index lookups, user-space bookkeeping, page faults.
    Software,
}

impl TimeCategory {
    /// All categories, in a stable order (used for reporting).
    pub const ALL: [TimeCategory; 5] = [
        TimeCategory::UserData,
        TimeCategory::Metadata,
        TimeCategory::Journal,
        TimeCategory::OpLog,
        TimeCategory::Software,
    ];

    fn index(self) -> usize {
        match self {
            TimeCategory::UserData => 0,
            TimeCategory::Metadata => 1,
            TimeCategory::Journal => 2,
            TimeCategory::OpLog => 3,
            TimeCategory::Software => 4,
        }
    }

    /// Position of this category in [`TimeCategory::ALL`] — the index
    /// into the per-category arrays of [`StatsSnapshot`] and of
    /// [`Stats::thread_category_time_ns`].
    pub fn index_in_all(self) -> usize {
        self.index()
    }

    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            TimeCategory::UserData => "user-data",
            TimeCategory::Metadata => "metadata",
            TimeCategory::Journal => "journal",
            TimeCategory::OpLog => "oplog",
            TimeCategory::Software => "software",
        }
    }
}

/// Shared, thread-safe accumulator of simulated time and device traffic.
#[derive(Debug, Default)]
pub struct Stats {
    time_ps: [AtomicU64; 5],
    bytes_written: [AtomicU64; 5],
    bytes_read: [AtomicU64; 5],
    flushes: AtomicU64,
    fences: AtomicU64,
    page_faults: AtomicU64,
    huge_page_faults: AtomicU64,
    kernel_traps: AtomicU64,
    maintenance: MaintenanceCounters,
    vectored: VectoredCounters,
    scaling: ScalingCounters,
    lease: LeaseCounters,
    ring: RingCounters,
    namespace: NamespaceCounters,
    chaos: ChaosCounters,
    tier: TierCounters,
}

/// Counters for the tiered-capacity subsystem: segment migrations between
/// the PM tier and the block-granular capacity tier, raw capacity-tier
/// traffic, and demotion work deferred by the QoS bandwidth cap.  The
/// `tiering` experiment is scored on demotions *and* promotions being
/// non-zero while the hot set sustains PM-class throughput.
#[derive(Debug, Default)]
pub struct TierCounters {
    /// Segments demoted from PM to the capacity tier.
    tier_demotions: AtomicU64,
    /// Segments promoted from the capacity tier back to PM.
    tier_promotions: AtomicU64,
    /// Bytes moved PM → capacity by demotions.
    tier_demoted_bytes: AtomicU64,
    /// Bytes moved capacity → PM by promotions.
    tier_promoted_bytes: AtomicU64,
    /// Read requests served by the capacity tier.
    tier_cap_reads: AtomicU64,
    /// Bytes read from the capacity tier.
    tier_cap_read_bytes: AtomicU64,
    /// Write requests issued to the capacity tier.
    tier_cap_writes: AtomicU64,
    /// Bytes written to the capacity tier.
    tier_cap_write_bytes: AtomicU64,
    /// Demotion candidates skipped in a maintenance tick because the
    /// per-tick migration bandwidth budget was exhausted (QoS capping so
    /// a demotion storm cannot starve the append path).
    tier_bandwidth_deferrals: AtomicU64,
}

/// Counters for the crash-point fuzzing and fault-injection machinery:
/// crash images captured (one per explored fence boundary plus one per
/// direct `crash()` call), cache lines that survived torn under
/// `CrashPolicy::TornWrites`, checked reads that failed on an injected
/// media error, and durability promises recorded on the device's ledger.
#[derive(Debug, Default)]
pub struct ChaosCounters {
    /// Crash images computed (`capture_crash_image`, including `crash()`).
    crash_captures: AtomicU64,
    /// Cache lines that survived as a torn prefix/suffix in a capture.
    torn_lines: AtomicU64,
    /// Checked reads that overlapped a poisoned range and failed.
    media_read_errors: AtomicU64,
    /// Durability promises recorded on the ledger.
    promises_declared: AtomicU64,
}

/// Counters for the sharded kernel namespace and its full-path lookup
/// cache: contended namespace-shard acquisitions (the `metadata`
/// experiment is scored on this staying ~zero for threads in disjoint
/// directories), path-cache probes that hit or missed, and cache
/// invalidations (per-directory generation bumps plus global
/// directory-move bumps).
#[derive(Debug, Default)]
pub struct NamespaceCounters {
    /// Times a namespace-shard lock was contended: a `try_lock` failed
    /// and the thread had to block.
    ns_shard_lock_waits: AtomicU64,
    /// Full-path cache probes that returned a usable (validated) entry.
    path_cache_hits: AtomicU64,
    /// Full-path cache probes that missed or failed generation
    /// validation, forcing a per-component directory walk.
    path_cache_misses: AtomicU64,
    /// Cache invalidations: per-directory generation bumps (unlink,
    /// rename, rmdir) and global directory-move generation bumps.
    path_cache_invalidations: AtomicU64,
}

/// Counters for the asynchronous submission/completion rings: how many
/// queued submissions drains observed (their sum over drains is the
/// offered ring depth), how many drains completed two or more
/// operations as one backend batch, and how many ordering fences those
/// batches saved relative to the synchronous one-fence-pair-per-write
/// path.  The `openloop` experiment is scored on `fences_amortized`
/// staying non-zero once callers keep ≥ 2 writes in flight.
#[derive(Debug, Default)]
pub struct RingCounters {
    /// Total submissions popped across all ring drains (Σ batch size).
    ring_depth: AtomicU64,
    /// Drains that posted two or more completions as one batch.
    /// Single-completion drains are not counted: the counter's purpose
    /// is to evidence *batching*, mirroring the `appendv` rule.
    completion_batch: AtomicU64,
    /// Ordering fences avoided by coalescing a batch's writes under a
    /// shared fence pair instead of fencing each write separately.
    fences_amortized: AtomicU64,
}

/// Counters for the multi-instance lease manager: how many instance
/// leases were handed out and returned, how many acquisitions collided
/// with a live holder (the `multi` experiment is scored on this staying
/// **zero**), and how many crashed instances' operation logs recovery
/// replayed.
#[derive(Debug, Default)]
pub struct LeaseCounters {
    /// Instance leases acquired.
    lease_acquires: AtomicU64,
    /// Instance leases released.
    lease_releases: AtomicU64,
    /// Lease acquisitions refused because the requested instance id was
    /// already held by a live instance.
    lease_conflicts: AtomicU64,
    /// Orphaned (crashed) instances whose operation logs were replayed.
    instances_recovered: AtomicU64,
}

/// Counters for the multi-core scaling work: sharded-lock contention,
/// operation-log epoch swaps, and checkpoint stalls.  The `scaling`
/// experiment is scored on these: under distinct-file concurrency shard
/// lock waits should stay low and checkpoint stalls should be **zero**
/// (truncation happens by epoch swap, never by stopping the world).
#[derive(Debug, Default)]
pub struct ScalingCounters {
    /// Times a sharded lock (kernel inode shard, splitfs registry shard,
    /// ...) was contended: a `try_lock` failed and the thread had to block.
    shard_lock_waits: AtomicU64,
    /// Operation-log epoch swaps (the active log half was sealed and the
    /// empty half took over).
    oplog_epoch_swaps: AtomicU64,
    /// Sealed-epoch truncations (the sealed half was re-zeroed after its
    /// staged data was retired).
    oplog_epoch_truncates: AtomicU64,
    /// On-demand growths of the operation log.
    oplog_grows: AtomicU64,
    /// Times a foreground writer found the log full with no epoch to swap
    /// to and no room to grow — the stop-the-world stall the epoch design
    /// exists to eliminate.
    checkpoint_stalls: AtomicU64,
    /// Simulated nanoseconds foreground writers spent stalled on log
    /// space (in picoseconds internally, like the clock).
    checkpoint_stall_ps: AtomicU64,
    /// Staging files recycled back into the pool after being fully
    /// relinked (instead of leaking until shutdown).
    staging_recycles: AtomicU64,
    /// Times a staging-lane lock was contended: a `try_lock` on the lane
    /// failed and the taker had to block.  Disjoint writers routed to
    /// disjoint lanes keep this ~zero — the lane-sharded pool's whole
    /// point.
    staging_lock_waits: AtomicU64,
    /// Staging files stolen from another lane's free list because the
    /// taker's home lane ran dry.
    staging_lane_steals: AtomicU64,
    /// Per-lane watermark adjustments made by the adaptive provisioning
    /// controller (grow or shrink).
    staging_adaptive_resizes: AtomicU64,
    /// Files whose long-unsynced staged extents were relinked by the
    /// cold-file policy to reclaim staging space under pressure.
    staging_cold_relinks: AtomicU64,
}

/// Counters for the U-Split background-maintenance subsystem: staging-file
/// provisioning, batched relink and operation-log group commit.  They live
/// on the device's shared [`Stats`] so the daemon (splitfs), the batched
/// relink entry point (kernelfs) and the experiment harness (bench) all
/// observe one consistent view.
#[derive(Debug, Default)]
pub struct MaintenanceCounters {
    /// Staging files created inline on the foreground write path because
    /// the pool ran dry (the failure mode the daemon exists to eliminate).
    staging_inline_creates: AtomicU64,
    /// Staging files created asynchronously by a maintenance worker.
    staging_bg_creates: AtomicU64,
    /// Invocations of the batched relink entry point.
    batched_relinks: AtomicU64,
    /// Total relink operations (coalesced staged runs) across all
    /// batched invocations.
    relink_batch_ops: AtomicU64,
    /// Operation-log group commits (multiple entries, one fence).
    oplog_group_commits: AtomicU64,
    /// Background checkpoints (relink-all plus log truncate) completed by a
    /// maintenance worker.
    daemon_checkpoints: AtomicU64,
}

/// Counters for the vectored / zero-copy / batch-durable I/O API: bytes
/// served without a memcpy through [`read views`](crate::PmemView),
/// gathered `appendv`/`writev_at` calls, `fsync_many` batches and kernel
/// journal transactions.  They make the API's wins observable (the paper's
/// methodology: count fences and transactions, don't assert).
#[derive(Debug, Default)]
pub struct VectoredCounters {
    /// Bytes served as zero-copy borrows of device memory (no memcpy).
    zero_copy_read_bytes: AtomicU64,
    /// Gathered (multi-slice) `appendv` calls.
    appendv_calls: AtomicU64,
    /// Total slices gathered across all `appendv` calls.
    appendv_slices: AtomicU64,
    /// Batched durability (`fsync_many`) calls.
    fsync_many_calls: AtomicU64,
    /// Total descriptors retired across all `fsync_many` calls.
    fsync_many_files: AtomicU64,
    /// Kernel journal transactions committed (jbd2-style commits plus the
    /// forced commits an `fsync` models).
    journal_txns: AtomicU64,
}

impl Stats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `ns` of simulated time attributed to `cat`.
    pub fn add_time(&self, cat: TimeCategory, ns: f64) {
        if !ns.is_finite() || ns <= 0.0 {
            return;
        }
        let picos = (ns * 1000.0).round() as u64;
        self.time_ps[cat.index()].fetch_add(picos, Ordering::Relaxed);
        THREAD_CAT_PICOS.with(|t| {
            let cell = &t[cat.index()];
            cell.set(cell.get() + picos);
        });
    }

    /// Simulated nanoseconds charged **by the calling thread** per
    /// category (in [`TimeCategory::ALL`] order), across every `Stats`
    /// instance, since the thread started.  The per-thread counterpart
    /// of [`StatsSnapshot::time_ns`] and the category-resolved
    /// counterpart of [`crate::SimClock::thread_time_ns`]: the
    /// observability layer takes deltas of this around an operation to
    /// build the per-op software-overhead breakdown.  Never reset;
    /// consumers subtract a starting sample.
    pub fn thread_category_time_ns() -> [f64; 5] {
        THREAD_CAT_PICOS.with(|t| std::array::from_fn(|i| t[i].get() as f64 / 1000.0))
    }

    /// Records `n` bytes written to the device attributed to `cat`.
    pub fn add_bytes_written(&self, cat: TimeCategory, n: u64) {
        self.bytes_written[cat.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` bytes read from the device attributed to `cat`.
    pub fn add_bytes_read(&self, cat: TimeCategory, n: u64) {
        self.bytes_read[cat.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Records one cache-line flush (`clwb`/`clflush`).
    pub fn add_flush(&self) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one ordering fence (`sfence`).
    pub fn add_fence(&self) {
        self.fences.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` 4 KiB page faults.
    pub fn add_page_faults(&self, n: u64) {
        self.page_faults.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` 2 MiB huge-page faults.
    pub fn add_huge_page_faults(&self, n: u64) {
        self.huge_page_faults.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one user/kernel boundary crossing (a system call).
    pub fn add_kernel_trap(&self) {
        self.kernel_traps.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one staging file created inline on the write path.
    pub fn add_staging_inline_create(&self) {
        self.maintenance
            .staging_inline_creates
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one staging file created by a background worker.
    pub fn add_staging_bg_create(&self) {
        self.maintenance
            .staging_bg_creates
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one batched relink applying `ops` relink operations.
    pub fn add_batched_relink(&self, ops: u64) {
        self.maintenance
            .batched_relinks
            .fetch_add(1, Ordering::Relaxed);
        self.maintenance
            .relink_batch_ops
            .fetch_add(ops, Ordering::Relaxed);
    }

    /// Records one operation-log group commit.
    pub fn add_oplog_group_commit(&self) {
        self.maintenance
            .oplog_group_commits
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed background checkpoint.
    pub fn add_daemon_checkpoint(&self) {
        self.maintenance
            .daemon_checkpoints
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` bytes served zero-copy (no memcpy) from device memory.
    pub fn add_zero_copy_read_bytes(&self, n: u64) {
        self.vectored
            .zero_copy_read_bytes
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records one vectored append of `slices` slices.  Single-slice
    /// calls are not counted: plain `append` delegates to `appendv`
    /// everywhere, and the counter's purpose is to evidence *gathering* —
    /// counting degenerate gathers would drown that signal.
    pub fn add_appendv(&self, slices: u64) {
        if slices < 2 {
            return;
        }
        self.vectored.appendv_calls.fetch_add(1, Ordering::Relaxed);
        self.vectored
            .appendv_slices
            .fetch_add(slices, Ordering::Relaxed);
    }

    /// Records one `fsync_many` call retiring `files` descriptors.
    pub fn add_fsync_many(&self, files: u64) {
        self.vectored
            .fsync_many_calls
            .fetch_add(1, Ordering::Relaxed);
        self.vectored
            .fsync_many_files
            .fetch_add(files, Ordering::Relaxed);
    }

    /// Records one kernel journal transaction commit.
    pub fn add_journal_txn(&self) {
        self.vectored.journal_txns.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one contended sharded-lock acquisition (a `try_lock` failed
    /// and the thread blocked).
    pub fn add_shard_lock_wait(&self) {
        self.scaling
            .shard_lock_waits
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one operation-log epoch swap (seal of the active half).
    pub fn add_oplog_epoch_swap(&self) {
        self.scaling
            .oplog_epoch_swaps
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one sealed-epoch truncation.
    pub fn add_oplog_epoch_truncate(&self) {
        self.scaling
            .oplog_epoch_truncates
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one on-demand operation-log growth.
    pub fn add_oplog_grow(&self) {
        self.scaling.oplog_grows.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one foreground stall on operation-log space lasting `ns`
    /// simulated nanoseconds.
    pub fn add_checkpoint_stall(&self, ns: f64) {
        self.scaling
            .checkpoint_stalls
            .fetch_add(1, Ordering::Relaxed);
        if ns.is_finite() && ns > 0.0 {
            self.scaling
                .checkpoint_stall_ps
                .fetch_add((ns * 1000.0).round() as u64, Ordering::Relaxed);
        }
    }

    /// Records one staging file recycled back into the pool.
    pub fn add_staging_recycle(&self) {
        self.scaling
            .staging_recycles
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one contended staging-lane lock acquisition (a `try_lock`
    /// on the lane failed and the taker blocked).
    pub fn add_staging_lock_wait(&self) {
        self.scaling
            .staging_lock_waits
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one staging file stolen from another lane's free list.
    pub fn add_staging_lane_steal(&self) {
        self.scaling
            .staging_lane_steals
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one adaptive watermark adjustment on a staging lane.
    pub fn add_staging_adaptive_resize(&self) {
        self.scaling
            .staging_adaptive_resizes
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one cold file whose staged extents were relinked to
    /// reclaim staging space.
    pub fn add_staging_cold_relink(&self) {
        self.scaling
            .staging_cold_relinks
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one instance-lease acquisition.
    pub fn add_lease_acquire(&self) {
        self.lease.lease_acquires.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one instance-lease release.
    pub fn add_lease_release(&self) {
        self.lease.lease_releases.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one refused lease acquisition (instance id held by a live
    /// instance).
    pub fn add_lease_conflict(&self) {
        self.lease.lease_conflicts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one orphaned instance whose operation log was replayed.
    pub fn add_instance_recovered(&self) {
        self.lease
            .instances_recovered
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one contended namespace-shard lock acquisition (a
    /// `try_lock` failed and the thread blocked).
    pub fn add_ns_shard_lock_wait(&self) {
        self.namespace
            .ns_shard_lock_waits
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one validated full-path cache hit.
    pub fn add_path_cache_hit(&self) {
        self.namespace
            .path_cache_hits
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one full-path cache miss (absent or stale entry).
    pub fn add_path_cache_miss(&self) {
        self.namespace
            .path_cache_misses
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one path-cache invalidation (a generation bump).
    pub fn add_path_cache_invalidation(&self) {
        self.namespace
            .path_cache_invalidations
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one crash-image capture.
    pub fn add_crash_capture(&self) {
        self.chaos.crash_captures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` cache lines surviving torn in a crash capture.
    pub fn add_torn_lines(&self, n: u64) {
        self.chaos.torn_lines.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one checked read failing on an injected media error.
    pub fn add_media_read_error(&self) {
        self.chaos.media_read_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one durability promise declared on the ledger.
    pub fn add_promise_declared(&self) {
        self.chaos.promises_declared.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one segment demotion moving `bytes` from PM to the
    /// capacity tier.
    pub fn add_tier_demotion(&self, bytes: u64) {
        self.tier.tier_demotions.fetch_add(1, Ordering::Relaxed);
        self.tier
            .tier_demoted_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one segment promotion moving `bytes` from the capacity
    /// tier back to PM.
    pub fn add_tier_promotion(&self, bytes: u64) {
        self.tier.tier_promotions.fetch_add(1, Ordering::Relaxed);
        self.tier
            .tier_promoted_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one capacity-tier read of `bytes` bytes.
    pub fn add_cap_read(&self, bytes: u64) {
        self.tier.tier_cap_reads.fetch_add(1, Ordering::Relaxed);
        self.tier
            .tier_cap_read_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one capacity-tier write of `bytes` bytes.
    pub fn add_cap_write(&self, bytes: u64) {
        self.tier.tier_cap_writes.fetch_add(1, Ordering::Relaxed);
        self.tier
            .tier_cap_write_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one demotion candidate deferred by the per-tick migration
    /// bandwidth budget.
    pub fn add_tier_bandwidth_deferral(&self) {
        self.tier
            .tier_bandwidth_deferrals
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one ring drain that popped `depth` queued submissions.
    pub fn add_ring_drain(&self, depth: u64) {
        self.ring.ring_depth.fetch_add(depth, Ordering::Relaxed);
    }

    /// Records one drain that posted two or more completions as a
    /// single backend batch.
    pub fn add_completion_batch(&self) {
        self.ring.completion_batch.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` ordering fences avoided by batch coalescing.
    pub fn add_fences_amortized(&self, n: u64) {
        self.ring.fences_amortized.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a copyable snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut time_ns = [0.0f64; 5];
        let mut written = [0u64; 5];
        let mut read = [0u64; 5];
        for (i, slot) in self.time_ps.iter().enumerate() {
            time_ns[i] = slot.load(Ordering::Relaxed) as f64 / 1000.0;
        }
        for (i, slot) in self.bytes_written.iter().enumerate() {
            written[i] = slot.load(Ordering::Relaxed);
        }
        for (i, slot) in self.bytes_read.iter().enumerate() {
            read[i] = slot.load(Ordering::Relaxed);
        }
        StatsSnapshot {
            time_ns,
            bytes_written: written,
            bytes_read: read,
            flushes: self.flushes.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            page_faults: self.page_faults.load(Ordering::Relaxed),
            huge_page_faults: self.huge_page_faults.load(Ordering::Relaxed),
            kernel_traps: self.kernel_traps.load(Ordering::Relaxed),
            staging_inline_creates: self
                .maintenance
                .staging_inline_creates
                .load(Ordering::Relaxed),
            staging_bg_creates: self.maintenance.staging_bg_creates.load(Ordering::Relaxed),
            batched_relinks: self.maintenance.batched_relinks.load(Ordering::Relaxed),
            relink_batch_ops: self.maintenance.relink_batch_ops.load(Ordering::Relaxed),
            oplog_group_commits: self.maintenance.oplog_group_commits.load(Ordering::Relaxed),
            daemon_checkpoints: self.maintenance.daemon_checkpoints.load(Ordering::Relaxed),
            zero_copy_read_bytes: self.vectored.zero_copy_read_bytes.load(Ordering::Relaxed),
            appendv_calls: self.vectored.appendv_calls.load(Ordering::Relaxed),
            appendv_slices: self.vectored.appendv_slices.load(Ordering::Relaxed),
            fsync_many_calls: self.vectored.fsync_many_calls.load(Ordering::Relaxed),
            fsync_many_files: self.vectored.fsync_many_files.load(Ordering::Relaxed),
            journal_txns: self.vectored.journal_txns.load(Ordering::Relaxed),
            shard_lock_waits: self.scaling.shard_lock_waits.load(Ordering::Relaxed),
            oplog_epoch_swaps: self.scaling.oplog_epoch_swaps.load(Ordering::Relaxed),
            oplog_epoch_truncates: self.scaling.oplog_epoch_truncates.load(Ordering::Relaxed),
            oplog_grows: self.scaling.oplog_grows.load(Ordering::Relaxed),
            checkpoint_stalls: self.scaling.checkpoint_stalls.load(Ordering::Relaxed),
            checkpoint_stall_ns: self.scaling.checkpoint_stall_ps.load(Ordering::Relaxed) as f64
                / 1000.0,
            staging_recycles: self.scaling.staging_recycles.load(Ordering::Relaxed),
            staging_lock_waits: self.scaling.staging_lock_waits.load(Ordering::Relaxed),
            staging_lane_steals: self.scaling.staging_lane_steals.load(Ordering::Relaxed),
            staging_adaptive_resizes: self
                .scaling
                .staging_adaptive_resizes
                .load(Ordering::Relaxed),
            staging_cold_relinks: self.scaling.staging_cold_relinks.load(Ordering::Relaxed),
            lease_acquires: self.lease.lease_acquires.load(Ordering::Relaxed),
            lease_releases: self.lease.lease_releases.load(Ordering::Relaxed),
            lease_conflicts: self.lease.lease_conflicts.load(Ordering::Relaxed),
            instances_recovered: self.lease.instances_recovered.load(Ordering::Relaxed),
            ring_depth: self.ring.ring_depth.load(Ordering::Relaxed),
            completion_batch: self.ring.completion_batch.load(Ordering::Relaxed),
            fences_amortized: self.ring.fences_amortized.load(Ordering::Relaxed),
            ns_shard_lock_waits: self.namespace.ns_shard_lock_waits.load(Ordering::Relaxed),
            path_cache_hits: self.namespace.path_cache_hits.load(Ordering::Relaxed),
            path_cache_misses: self.namespace.path_cache_misses.load(Ordering::Relaxed),
            path_cache_invalidations: self
                .namespace
                .path_cache_invalidations
                .load(Ordering::Relaxed),
            crash_captures: self.chaos.crash_captures.load(Ordering::Relaxed),
            torn_lines: self.chaos.torn_lines.load(Ordering::Relaxed),
            media_read_errors: self.chaos.media_read_errors.load(Ordering::Relaxed),
            promises_declared: self.chaos.promises_declared.load(Ordering::Relaxed),
            tier_demotions: self.tier.tier_demotions.load(Ordering::Relaxed),
            tier_promotions: self.tier.tier_promotions.load(Ordering::Relaxed),
            tier_demoted_bytes: self.tier.tier_demoted_bytes.load(Ordering::Relaxed),
            tier_promoted_bytes: self.tier.tier_promoted_bytes.load(Ordering::Relaxed),
            tier_cap_reads: self.tier.tier_cap_reads.load(Ordering::Relaxed),
            tier_cap_read_bytes: self.tier.tier_cap_read_bytes.load(Ordering::Relaxed),
            tier_cap_writes: self.tier.tier_cap_writes.load(Ordering::Relaxed),
            tier_cap_write_bytes: self.tier.tier_cap_write_bytes.load(Ordering::Relaxed),
            tier_bandwidth_deferrals: self.tier.tier_bandwidth_deferrals.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for slot in &self.time_ps {
            slot.store(0, Ordering::Relaxed);
        }
        for slot in &self.bytes_written {
            slot.store(0, Ordering::Relaxed);
        }
        for slot in &self.bytes_read {
            slot.store(0, Ordering::Relaxed);
        }
        self.flushes.store(0, Ordering::Relaxed);
        self.fences.store(0, Ordering::Relaxed);
        self.page_faults.store(0, Ordering::Relaxed);
        self.huge_page_faults.store(0, Ordering::Relaxed);
        self.kernel_traps.store(0, Ordering::Relaxed);
        self.maintenance
            .staging_inline_creates
            .store(0, Ordering::Relaxed);
        self.maintenance
            .staging_bg_creates
            .store(0, Ordering::Relaxed);
        self.maintenance.batched_relinks.store(0, Ordering::Relaxed);
        self.maintenance
            .relink_batch_ops
            .store(0, Ordering::Relaxed);
        self.maintenance
            .oplog_group_commits
            .store(0, Ordering::Relaxed);
        self.maintenance
            .daemon_checkpoints
            .store(0, Ordering::Relaxed);
        self.vectored
            .zero_copy_read_bytes
            .store(0, Ordering::Relaxed);
        self.vectored.appendv_calls.store(0, Ordering::Relaxed);
        self.vectored.appendv_slices.store(0, Ordering::Relaxed);
        self.vectored.fsync_many_calls.store(0, Ordering::Relaxed);
        self.vectored.fsync_many_files.store(0, Ordering::Relaxed);
        self.vectored.journal_txns.store(0, Ordering::Relaxed);
        self.scaling.shard_lock_waits.store(0, Ordering::Relaxed);
        self.scaling.oplog_epoch_swaps.store(0, Ordering::Relaxed);
        self.scaling
            .oplog_epoch_truncates
            .store(0, Ordering::Relaxed);
        self.scaling.oplog_grows.store(0, Ordering::Relaxed);
        self.scaling.checkpoint_stalls.store(0, Ordering::Relaxed);
        self.scaling.checkpoint_stall_ps.store(0, Ordering::Relaxed);
        self.scaling.staging_recycles.store(0, Ordering::Relaxed);
        self.scaling.staging_lock_waits.store(0, Ordering::Relaxed);
        self.scaling.staging_lane_steals.store(0, Ordering::Relaxed);
        self.scaling
            .staging_adaptive_resizes
            .store(0, Ordering::Relaxed);
        self.scaling
            .staging_cold_relinks
            .store(0, Ordering::Relaxed);
        self.lease.lease_acquires.store(0, Ordering::Relaxed);
        self.lease.lease_releases.store(0, Ordering::Relaxed);
        self.lease.lease_conflicts.store(0, Ordering::Relaxed);
        self.lease.instances_recovered.store(0, Ordering::Relaxed);
        self.ring.ring_depth.store(0, Ordering::Relaxed);
        self.ring.completion_batch.store(0, Ordering::Relaxed);
        self.ring.fences_amortized.store(0, Ordering::Relaxed);
        self.namespace
            .ns_shard_lock_waits
            .store(0, Ordering::Relaxed);
        self.namespace.path_cache_hits.store(0, Ordering::Relaxed);
        self.namespace.path_cache_misses.store(0, Ordering::Relaxed);
        self.namespace
            .path_cache_invalidations
            .store(0, Ordering::Relaxed);
        self.chaos.crash_captures.store(0, Ordering::Relaxed);
        self.chaos.torn_lines.store(0, Ordering::Relaxed);
        self.chaos.media_read_errors.store(0, Ordering::Relaxed);
        self.chaos.promises_declared.store(0, Ordering::Relaxed);
        self.tier.tier_demotions.store(0, Ordering::Relaxed);
        self.tier.tier_promotions.store(0, Ordering::Relaxed);
        self.tier.tier_demoted_bytes.store(0, Ordering::Relaxed);
        self.tier.tier_promoted_bytes.store(0, Ordering::Relaxed);
        self.tier.tier_cap_reads.store(0, Ordering::Relaxed);
        self.tier.tier_cap_read_bytes.store(0, Ordering::Relaxed);
        self.tier.tier_cap_writes.store(0, Ordering::Relaxed);
        self.tier.tier_cap_write_bytes.store(0, Ordering::Relaxed);
        self.tier
            .tier_bandwidth_deferrals
            .store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`Stats`], plus derived metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Simulated nanoseconds per [`TimeCategory`] (indexed by `TimeCategory::ALL` order).
    pub time_ns: [f64; 5],
    /// Bytes written to the device per category.
    pub bytes_written: [u64; 5],
    /// Bytes read from the device per category.
    pub bytes_read: [u64; 5],
    /// Number of cache-line flushes issued.
    pub flushes: u64,
    /// Number of ordering fences issued.
    pub fences: u64,
    /// Number of 4 KiB page faults taken.
    pub page_faults: u64,
    /// Number of 2 MiB huge-page faults taken.
    pub huge_page_faults: u64,
    /// Number of kernel traps (system calls) taken.
    pub kernel_traps: u64,
    /// Staging files created inline on the foreground write path.
    pub staging_inline_creates: u64,
    /// Staging files created by a background maintenance worker.
    pub staging_bg_creates: u64,
    /// Invocations of the batched relink entry point.
    pub batched_relinks: u64,
    /// Total relink operations (coalesced staged runs) across all batches.
    pub relink_batch_ops: u64,
    /// Operation-log group commits (multiple entries, one fence).
    pub oplog_group_commits: u64,
    /// Background checkpoints completed by a maintenance worker.
    pub daemon_checkpoints: u64,
    /// Bytes served as zero-copy borrows (no memcpy) of device memory.
    pub zero_copy_read_bytes: u64,
    /// Gathered (multi-slice) `appendv` calls.
    pub appendv_calls: u64,
    /// Total slices gathered across all `appendv` calls.
    pub appendv_slices: u64,
    /// Batched durability (`fsync_many`) calls.
    pub fsync_many_calls: u64,
    /// Total descriptors retired across all `fsync_many` calls.
    pub fsync_many_files: u64,
    /// Kernel journal transactions committed.
    pub journal_txns: u64,
    /// Contended sharded-lock acquisitions (a `try_lock` failed first).
    pub shard_lock_waits: u64,
    /// Operation-log epoch swaps (active half sealed, empty half armed).
    pub oplog_epoch_swaps: u64,
    /// Sealed-epoch truncations.
    pub oplog_epoch_truncates: u64,
    /// On-demand operation-log growths.
    pub oplog_grows: u64,
    /// Foreground stalls on operation-log space (must be zero under the
    /// epoch design).
    pub checkpoint_stalls: u64,
    /// Simulated nanoseconds spent in those stalls.
    pub checkpoint_stall_ns: f64,
    /// Staging files recycled back into the pool after full relink.
    pub staging_recycles: u64,
    /// Contended staging-lane lock acquisitions (a `try_lock` failed
    /// first).  ~Zero for disjoint writers on a lane-per-writer pool.
    pub staging_lock_waits: u64,
    /// Staging files stolen across lanes after a home lane ran dry.
    pub staging_lane_steals: u64,
    /// Adaptive watermark adjustments on staging lanes.
    pub staging_adaptive_resizes: u64,
    /// Cold files relinked to reclaim staging space under pressure.
    pub staging_cold_relinks: u64,
    /// Instance leases acquired.
    pub lease_acquires: u64,
    /// Instance leases released.
    pub lease_releases: u64,
    /// Lease acquisitions refused because the id was held by a live
    /// instance (must be zero in a healthy multi-instance run).
    pub lease_conflicts: u64,
    /// Orphaned (crashed) instances whose operation logs were replayed.
    pub instances_recovered: u64,
    /// Total submissions popped across all ring drains (Σ batch size).
    pub ring_depth: u64,
    /// Ring drains that posted two or more completions as one batch.
    pub completion_batch: u64,
    /// Ordering fences avoided by coalescing batched writes under a
    /// shared fence pair.
    pub fences_amortized: u64,
    /// Contended namespace-shard lock acquisitions (a `try_lock` failed
    /// first).  ~Zero for threads working in disjoint directories.
    pub ns_shard_lock_waits: u64,
    /// Validated full-path cache hits (deep resolve served by one probe).
    pub path_cache_hits: u64,
    /// Full-path cache misses (absent or stale entry; component walk).
    pub path_cache_misses: u64,
    /// Path-cache invalidations (per-directory and directory-move
    /// generation bumps).
    pub path_cache_invalidations: u64,
    /// Crash images captured (fuzzer crash points plus direct `crash()`).
    pub crash_captures: u64,
    /// Cache lines that survived torn in crash captures
    /// (`CrashPolicy::TornWrites`).
    pub torn_lines: u64,
    /// Checked reads that failed on an injected media error.
    pub media_read_errors: u64,
    /// Durability promises recorded on the device's ledger.
    pub promises_declared: u64,
    /// Segments demoted from PM to the capacity tier.
    pub tier_demotions: u64,
    /// Segments promoted from the capacity tier back to PM.
    pub tier_promotions: u64,
    /// Bytes moved PM → capacity by demotions.
    pub tier_demoted_bytes: u64,
    /// Bytes moved capacity → PM by promotions.
    pub tier_promoted_bytes: u64,
    /// Read requests served by the capacity tier.
    pub tier_cap_reads: u64,
    /// Bytes read from the capacity tier.
    pub tier_cap_read_bytes: u64,
    /// Write requests issued to the capacity tier.
    pub tier_cap_writes: u64,
    /// Bytes written to the capacity tier.
    pub tier_cap_write_bytes: u64,
    /// Demotion candidates deferred by the per-tick bandwidth budget.
    pub tier_bandwidth_deferrals: u64,
}

impl StatsSnapshot {
    /// Simulated time attributed to `cat`.
    pub fn time(&self, cat: TimeCategory) -> f64 {
        self.time_ns[cat.index()]
    }

    /// Bytes written to the device for `cat`.
    pub fn written(&self, cat: TimeCategory) -> u64 {
        self.bytes_written[cat.index()]
    }

    /// Total simulated time across all categories.
    pub fn total_time_ns(&self) -> f64 {
        self.time_ns.iter().sum()
    }

    /// Total bytes written across all categories.
    pub fn total_bytes_written(&self) -> u64 {
        self.bytes_written.iter().sum()
    }

    /// Total bytes read across all categories.
    pub fn total_bytes_read(&self) -> u64 {
        self.bytes_read.iter().sum()
    }

    /// The paper's software overhead: total time minus user-data device time.
    pub fn software_overhead_ns(&self) -> f64 {
        self.total_time_ns() - self.time(TimeCategory::UserData)
    }

    /// Write amplification relative to `user_bytes` of application data.
    /// Returns `None` when no user bytes were written.
    pub fn write_amplification(&self, user_bytes: u64) -> Option<f64> {
        if user_bytes == 0 {
            None
        } else {
            Some(self.total_bytes_written() as f64 / user_bytes as f64)
        }
    }

    /// Element-wise difference `self - earlier`; used to measure a phase
    /// without subtracting counter fields by hand.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let mut out = *self;
        for i in 0..5 {
            out.time_ns[i] -= earlier.time_ns[i];
            out.bytes_written[i] = out.bytes_written[i].saturating_sub(earlier.bytes_written[i]);
            out.bytes_read[i] = out.bytes_read[i].saturating_sub(earlier.bytes_read[i]);
        }
        out.flushes = out.flushes.saturating_sub(earlier.flushes);
        out.fences = out.fences.saturating_sub(earlier.fences);
        out.page_faults = out.page_faults.saturating_sub(earlier.page_faults);
        out.huge_page_faults = out
            .huge_page_faults
            .saturating_sub(earlier.huge_page_faults);
        out.kernel_traps = out.kernel_traps.saturating_sub(earlier.kernel_traps);
        out.staging_inline_creates = out
            .staging_inline_creates
            .saturating_sub(earlier.staging_inline_creates);
        out.staging_bg_creates = out
            .staging_bg_creates
            .saturating_sub(earlier.staging_bg_creates);
        out.batched_relinks = out.batched_relinks.saturating_sub(earlier.batched_relinks);
        out.relink_batch_ops = out
            .relink_batch_ops
            .saturating_sub(earlier.relink_batch_ops);
        out.oplog_group_commits = out
            .oplog_group_commits
            .saturating_sub(earlier.oplog_group_commits);
        out.daemon_checkpoints = out
            .daemon_checkpoints
            .saturating_sub(earlier.daemon_checkpoints);
        out.zero_copy_read_bytes = out
            .zero_copy_read_bytes
            .saturating_sub(earlier.zero_copy_read_bytes);
        out.appendv_calls = out.appendv_calls.saturating_sub(earlier.appendv_calls);
        out.appendv_slices = out.appendv_slices.saturating_sub(earlier.appendv_slices);
        out.fsync_many_calls = out
            .fsync_many_calls
            .saturating_sub(earlier.fsync_many_calls);
        out.fsync_many_files = out
            .fsync_many_files
            .saturating_sub(earlier.fsync_many_files);
        out.journal_txns = out.journal_txns.saturating_sub(earlier.journal_txns);
        out.shard_lock_waits = out
            .shard_lock_waits
            .saturating_sub(earlier.shard_lock_waits);
        out.oplog_epoch_swaps = out
            .oplog_epoch_swaps
            .saturating_sub(earlier.oplog_epoch_swaps);
        out.oplog_epoch_truncates = out
            .oplog_epoch_truncates
            .saturating_sub(earlier.oplog_epoch_truncates);
        out.oplog_grows = out.oplog_grows.saturating_sub(earlier.oplog_grows);
        out.checkpoint_stalls = out
            .checkpoint_stalls
            .saturating_sub(earlier.checkpoint_stalls);
        out.checkpoint_stall_ns -= earlier.checkpoint_stall_ns;
        out.staging_recycles = out
            .staging_recycles
            .saturating_sub(earlier.staging_recycles);
        out.staging_lock_waits = out
            .staging_lock_waits
            .saturating_sub(earlier.staging_lock_waits);
        out.staging_lane_steals = out
            .staging_lane_steals
            .saturating_sub(earlier.staging_lane_steals);
        out.staging_adaptive_resizes = out
            .staging_adaptive_resizes
            .saturating_sub(earlier.staging_adaptive_resizes);
        out.staging_cold_relinks = out
            .staging_cold_relinks
            .saturating_sub(earlier.staging_cold_relinks);
        out.lease_acquires = out.lease_acquires.saturating_sub(earlier.lease_acquires);
        out.lease_releases = out.lease_releases.saturating_sub(earlier.lease_releases);
        out.lease_conflicts = out.lease_conflicts.saturating_sub(earlier.lease_conflicts);
        out.instances_recovered = out
            .instances_recovered
            .saturating_sub(earlier.instances_recovered);
        out.ring_depth = out.ring_depth.saturating_sub(earlier.ring_depth);
        out.completion_batch = out
            .completion_batch
            .saturating_sub(earlier.completion_batch);
        out.fences_amortized = out
            .fences_amortized
            .saturating_sub(earlier.fences_amortized);
        out.ns_shard_lock_waits = out
            .ns_shard_lock_waits
            .saturating_sub(earlier.ns_shard_lock_waits);
        out.path_cache_hits = out.path_cache_hits.saturating_sub(earlier.path_cache_hits);
        out.path_cache_misses = out
            .path_cache_misses
            .saturating_sub(earlier.path_cache_misses);
        out.path_cache_invalidations = out
            .path_cache_invalidations
            .saturating_sub(earlier.path_cache_invalidations);
        out.crash_captures = out.crash_captures.saturating_sub(earlier.crash_captures);
        out.torn_lines = out.torn_lines.saturating_sub(earlier.torn_lines);
        out.media_read_errors = out
            .media_read_errors
            .saturating_sub(earlier.media_read_errors);
        out.promises_declared = out
            .promises_declared
            .saturating_sub(earlier.promises_declared);
        out.tier_demotions = out.tier_demotions.saturating_sub(earlier.tier_demotions);
        out.tier_promotions = out.tier_promotions.saturating_sub(earlier.tier_promotions);
        out.tier_demoted_bytes = out
            .tier_demoted_bytes
            .saturating_sub(earlier.tier_demoted_bytes);
        out.tier_promoted_bytes = out
            .tier_promoted_bytes
            .saturating_sub(earlier.tier_promoted_bytes);
        out.tier_cap_reads = out.tier_cap_reads.saturating_sub(earlier.tier_cap_reads);
        out.tier_cap_read_bytes = out
            .tier_cap_read_bytes
            .saturating_sub(earlier.tier_cap_read_bytes);
        out.tier_cap_writes = out.tier_cap_writes.saturating_sub(earlier.tier_cap_writes);
        out.tier_cap_write_bytes = out
            .tier_cap_write_bytes
            .saturating_sub(earlier.tier_cap_write_bytes);
        out.tier_bandwidth_deferrals = out
            .tier_bandwidth_deferrals
            .saturating_sub(earlier.tier_bandwidth_deferrals);
        out
    }

    /// Alias for [`StatsSnapshot::delta`], kept for older call sites.
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        self.delta(earlier)
    }

    /// Every scalar event counter as `(name, value)` pairs, in a stable
    /// order — the single source the JSON exporters iterate instead of
    /// naming each field again.
    pub fn counters(&self) -> [(&'static str, u64); 51] {
        [
            ("flushes", self.flushes),
            ("fences", self.fences),
            ("page_faults", self.page_faults),
            ("huge_page_faults", self.huge_page_faults),
            ("kernel_traps", self.kernel_traps),
            ("staging_inline_creates", self.staging_inline_creates),
            ("staging_bg_creates", self.staging_bg_creates),
            ("batched_relinks", self.batched_relinks),
            ("relink_batch_ops", self.relink_batch_ops),
            ("oplog_group_commits", self.oplog_group_commits),
            ("daemon_checkpoints", self.daemon_checkpoints),
            ("zero_copy_read_bytes", self.zero_copy_read_bytes),
            ("appendv_calls", self.appendv_calls),
            ("appendv_slices", self.appendv_slices),
            ("fsync_many_calls", self.fsync_many_calls),
            ("fsync_many_files", self.fsync_many_files),
            ("journal_txns", self.journal_txns),
            ("shard_lock_waits", self.shard_lock_waits),
            ("oplog_epoch_swaps", self.oplog_epoch_swaps),
            ("oplog_epoch_truncates", self.oplog_epoch_truncates),
            ("oplog_grows", self.oplog_grows),
            ("checkpoint_stalls", self.checkpoint_stalls),
            ("staging_recycles", self.staging_recycles),
            ("staging_lock_waits", self.staging_lock_waits),
            ("staging_lane_steals", self.staging_lane_steals),
            ("staging_adaptive_resizes", self.staging_adaptive_resizes),
            ("staging_cold_relinks", self.staging_cold_relinks),
            ("lease_acquires", self.lease_acquires),
            ("lease_releases", self.lease_releases),
            ("lease_conflicts", self.lease_conflicts),
            ("instances_recovered", self.instances_recovered),
            ("ring_depth", self.ring_depth),
            ("completion_batch", self.completion_batch),
            ("fences_amortized", self.fences_amortized),
            ("ns_shard_lock_waits", self.ns_shard_lock_waits),
            ("path_cache_hits", self.path_cache_hits),
            ("path_cache_misses", self.path_cache_misses),
            ("path_cache_invalidations", self.path_cache_invalidations),
            ("crash_captures", self.crash_captures),
            ("torn_lines", self.torn_lines),
            ("media_read_errors", self.media_read_errors),
            ("promises_declared", self.promises_declared),
            ("tier_demotions", self.tier_demotions),
            ("tier_promotions", self.tier_promotions),
            ("tier_demoted_bytes", self.tier_demoted_bytes),
            ("tier_promoted_bytes", self.tier_promoted_bytes),
            ("tier_cap_reads", self.tier_cap_reads),
            ("tier_cap_read_bytes", self.tier_cap_read_bytes),
            ("tier_cap_writes", self.tier_cap_writes),
            ("tier_cap_write_bytes", self.tier_cap_write_bytes),
            ("tier_bandwidth_deferrals", self.tier_bandwidth_deferrals),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_time_by_category() {
        let s = Stats::new();
        s.add_time(TimeCategory::UserData, 100.0);
        s.add_time(TimeCategory::Software, 50.0);
        s.add_time(TimeCategory::Software, 25.0);
        let snap = s.snapshot();
        assert!((snap.time(TimeCategory::UserData) - 100.0).abs() < 1e-6);
        assert!((snap.time(TimeCategory::Software) - 75.0).abs() < 1e-6);
        assert!((snap.total_time_ns() - 175.0).abs() < 1e-6);
        assert!((snap.software_overhead_ns() - 75.0).abs() < 1e-6);
    }

    #[test]
    fn write_amplification_counts_all_categories() {
        let s = Stats::new();
        s.add_bytes_written(TimeCategory::UserData, 4096);
        s.add_bytes_written(TimeCategory::Journal, 4096);
        let snap = s.snapshot();
        assert_eq!(snap.total_bytes_written(), 8192);
        assert_eq!(snap.write_amplification(4096), Some(2.0));
        assert_eq!(snap.write_amplification(0), None);
    }

    #[test]
    fn delta_since_isolates_a_phase() {
        let s = Stats::new();
        s.add_time(TimeCategory::UserData, 10.0);
        s.add_fence();
        let before = s.snapshot();
        s.add_time(TimeCategory::UserData, 5.0);
        s.add_fence();
        s.add_fence();
        let delta = s.snapshot().delta_since(&before);
        assert!((delta.time(TimeCategory::UserData) - 5.0).abs() < 1e-6);
        assert_eq!(delta.fences, 2);
    }

    #[test]
    fn reset_clears_everything() {
        let s = Stats::new();
        s.add_time(TimeCategory::Journal, 10.0);
        s.add_bytes_written(TimeCategory::Journal, 64);
        s.add_kernel_trap();
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.total_time_ns(), 0.0);
        assert_eq!(snap.total_bytes_written(), 0);
        assert_eq!(snap.kernel_traps, 0);
    }

    #[test]
    fn thread_category_tee_tracks_own_charges_only() {
        std::thread::spawn(|| {
            let s = Stats::new();
            let t0 = Stats::thread_category_time_ns();
            s.add_time(TimeCategory::OpLog, 40.0);
            s.add_time(TimeCategory::OpLog, 2.5);
            // A second instance tees into the same thread-local.
            let s2 = Stats::new();
            s2.add_time(TimeCategory::Software, 7.5);
            let t1 = Stats::thread_category_time_ns();
            let oplog = TimeCategory::OpLog.index_in_all();
            let sw = TimeCategory::Software.index_in_all();
            assert!((t1[oplog] - t0[oplog] - 42.5).abs() < 1e-6);
            assert!((t1[sw] - t0[sw] - 7.5).abs() < 1e-6);
            // Resetting an instance leaves the thread tee monotone.
            s.reset();
            let t2 = Stats::thread_category_time_ns();
            assert!(t2[oplog] >= t1[oplog]);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn delta_alias_and_counters_agree() {
        let s = Stats::new();
        s.add_fence();
        s.add_kernel_trap();
        let snap = s.snapshot();
        assert_eq!(snap.delta(&StatsSnapshot::default()), snap);
        assert_eq!(snap.delta_since(&StatsSnapshot::default()), snap);
        let counters = snap.counters();
        assert_eq!(counters.iter().find(|(n, _)| *n == "fences").unwrap().1, 1);
        assert_eq!(
            counters
                .iter()
                .find(|(n, _)| *n == "kernel_traps")
                .unwrap()
                .1,
            1
        );
    }

    #[test]
    fn counters_name_every_counter_field() {
        // Every field of `StatsSnapshot` is 8 bytes wide: three 5-element
        // per-category arrays, one f64 scalar (`checkpoint_stall_ns`) and
        // N scalar u64 event counters.  `counters()` must name all N —
        // the list drifted 31 → 34 → 38 by hand before this check.
        let words = std::mem::size_of::<StatsSnapshot>() / 8;
        let scalar_counters = words - 3 * 5 - 1;
        let counters = StatsSnapshot::default().counters();
        assert_eq!(
            counters.len(),
            scalar_counters,
            "StatsSnapshot has {scalar_counters} scalar counter fields but \
             counters() names {}; a field was added without extending \
             counters() (and likely snapshot()/reset()/delta())",
            counters.len()
        );
        // Names must be unique, or the JSON exporters silently collide.
        let mut names: Vec<&str> = counters.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), counters.len(), "duplicate counter name");

        // Drive every counter to a non-zero value through the public API,
        // then check that delta() subtracts each one: a snapshot minus
        // itself must be exactly the default (a field missed in delta()
        // would survive the subtraction).
        let s = Stats::new();
        s.add_time(TimeCategory::UserData, 1.0);
        s.add_bytes_written(TimeCategory::UserData, 1);
        s.add_bytes_read(TimeCategory::UserData, 1);
        s.add_flush();
        s.add_fence();
        s.add_page_faults(1);
        s.add_huge_page_faults(1);
        s.add_kernel_trap();
        s.add_staging_inline_create();
        s.add_staging_bg_create();
        s.add_batched_relink(1);
        s.add_oplog_group_commit();
        s.add_daemon_checkpoint();
        s.add_zero_copy_read_bytes(1);
        s.add_appendv(2);
        s.add_fsync_many(1);
        s.add_journal_txn();
        s.add_shard_lock_wait();
        s.add_oplog_epoch_swap();
        s.add_oplog_epoch_truncate();
        s.add_oplog_grow();
        s.add_checkpoint_stall(1.0);
        s.add_staging_recycle();
        s.add_staging_lock_wait();
        s.add_staging_lane_steal();
        s.add_staging_adaptive_resize();
        s.add_staging_cold_relink();
        s.add_lease_acquire();
        s.add_lease_release();
        s.add_lease_conflict();
        s.add_instance_recovered();
        s.add_ring_drain(1);
        s.add_completion_batch();
        s.add_fences_amortized(1);
        s.add_ns_shard_lock_wait();
        s.add_path_cache_hit();
        s.add_path_cache_miss();
        s.add_path_cache_invalidation();
        s.add_crash_capture();
        s.add_torn_lines(1);
        s.add_media_read_error();
        s.add_promise_declared();
        s.add_tier_demotion(1);
        s.add_tier_promotion(1);
        s.add_cap_read(1);
        s.add_cap_write(1);
        s.add_tier_bandwidth_deferral();
        let snap = s.snapshot();
        for (name, value) in snap.counters() {
            assert!(value > 0, "counter {name} untouched by its add method");
        }
        assert_eq!(
            snap.delta(&snap),
            StatsSnapshot::default(),
            "delta() missed a field: snapshot minus itself must be zero"
        );
    }

    #[test]
    fn invalid_time_charges_are_ignored() {
        let s = Stats::new();
        s.add_time(TimeCategory::UserData, -1.0);
        s.add_time(TimeCategory::UserData, f64::NAN);
        assert_eq!(s.snapshot().total_time_ns(), 0.0);
    }
}
