//! Simulated time.
//!
//! All performance results in the reproduction are reported in *simulated
//! nanoseconds*: each device access and each modelled software action adds a
//! cost (from [`crate::cost::CostModel`]) to a shared [`SimClock`].  This
//! makes the experiments deterministic and independent of the speed of the
//! machine running the emulation, while preserving the relative costs the
//! paper measures on real persistent memory.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    /// Simulated picoseconds of work performed (or waited for) by the
    /// current thread.  See [`SimClock::thread_time_ns`].
    static THREAD_PICOS: Cell<u64> = const { Cell::new(0) };
}

/// A monotonically increasing simulated clock, in nanoseconds.
///
/// The clock is shared (via `Arc`) between the device, the file systems and
/// the workload drivers.  It is advanced with [`SimClock::advance`] and read
/// with [`SimClock::now_ns`].  Sub-nanosecond charges are accumulated in
/// picoseconds internally so that repeated tiny charges (per-byte bandwidth
/// costs) do not vanish to rounding.
#[derive(Debug, Default)]
pub struct SimClock {
    picos: AtomicU64,
}

impl SimClock {
    /// Creates a clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ns` simulated nanoseconds (may be fractional).
    ///
    /// Negative or non-finite charges are ignored; they indicate a bug in a
    /// cost computation and must not corrupt the clock.
    pub fn advance(&self, ns: f64) {
        if !ns.is_finite() || ns <= 0.0 {
            return;
        }
        let picos = (ns * 1000.0).round() as u64;
        self.picos.fetch_add(picos, Ordering::Relaxed);
        THREAD_PICOS.with(|t| t.set(t.get() + picos));
    }

    /// Simulated nanoseconds of work performed **by the calling thread**
    /// (its own charges on any clock, plus waits recorded with
    /// [`SimClock::charge_thread_wait`]).  The global clock sums every
    /// thread's charges and therefore cannot distinguish serialized from
    /// parallel execution; per-thread time gives each thread's critical
    /// path, so a multi-threaded workload's simulated makespan is the
    /// maximum over its threads' deltas of this value.
    pub fn thread_time_ns() -> f64 {
        THREAD_PICOS.with(|t| t.get()) as f64 / 1000.0
    }

    /// Records `ns` simulated nanoseconds the calling thread spent blocked
    /// on a contended lock.  This extends only the thread's critical path
    /// ([`SimClock::thread_time_ns`]), not the global clock: the waited-for
    /// work was already charged globally by the thread performing it.
    /// Lock helpers measure the wait as the global-clock delta across the
    /// blocking acquisition — exactly the simulated work others got done
    /// while this thread could not proceed.
    pub fn charge_thread_wait(ns: f64) {
        if !ns.is_finite() || ns <= 0.0 {
            return;
        }
        THREAD_PICOS.with(|t| t.set(t.get() + (ns * 1000.0).round() as u64));
    }

    /// Returns the current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.picos.load(Ordering::Relaxed) / 1000
    }

    /// Returns the current simulated time in fractional nanoseconds.
    pub fn now_ns_f64(&self) -> f64 {
        self.picos.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// Resets the clock to zero.  Used between experiment phases (e.g. the
    /// load and run phases of YCSB) so each phase is timed independently.
    pub fn reset(&self) {
        self.picos.store(0, Ordering::Relaxed);
    }
}

/// A scoped timer: measures the simulated time elapsed between construction
/// and [`Elapsed::elapsed_ns`], for a given clock.
#[derive(Debug)]
pub struct Elapsed<'a> {
    clock: &'a SimClock,
    start_ns: f64,
}

impl<'a> Elapsed<'a> {
    /// Starts measuring at the clock's current time.
    pub fn start(clock: &'a SimClock) -> Self {
        Self {
            clock,
            start_ns: clock.now_ns_f64(),
        }
    }

    /// Returns nanoseconds of simulated time elapsed since [`Elapsed::start`].
    pub fn elapsed_ns(&self) -> f64 {
        self.clock.now_ns_f64() - self.start_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_reads() {
        let c = SimClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(100.0);
        c.advance(0.5);
        c.advance(0.5);
        assert_eq!(c.now_ns(), 101);
    }

    #[test]
    fn fractional_charges_accumulate() {
        let c = SimClock::new();
        for _ in 0..1000 {
            c.advance(0.001);
        }
        // 1000 * 0.001 ns = 1 ns, representable exactly in picoseconds.
        assert_eq!(c.now_ns(), 1);
    }

    #[test]
    fn ignores_invalid_charges() {
        let c = SimClock::new();
        c.advance(-5.0);
        c.advance(f64::NAN);
        c.advance(f64::INFINITY);
        assert_eq!(c.now_ns(), 0);
    }

    #[test]
    fn reset_zeroes_the_clock() {
        let c = SimClock::new();
        c.advance(42.0);
        c.reset();
        assert_eq!(c.now_ns(), 0);
    }

    #[test]
    fn elapsed_measures_delta() {
        let c = SimClock::new();
        c.advance(10.0);
        let t = Elapsed::start(&c);
        c.advance(32.0);
        assert!((t.elapsed_ns() - 32.0).abs() < 1e-6);
    }

    #[test]
    fn concurrent_advances_are_not_lost() {
        use std::sync::Arc;
        let c = Arc::new(SimClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.advance(1.0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now_ns(), 40_000);
    }
}
