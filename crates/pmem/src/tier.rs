//! The capacity tier: a slower, block-granular region behind the PM tier.
//!
//! PM capacity is the scarce resource in production, so the reproduction
//! grows a second tier: one address space ([`PmemDevice`]) is split into a
//! fast PM region `[0, pm_bytes)` with byte-granular persistence semantics
//! and a capacity region `[pm_bytes, size)` modelled as low-latency flash —
//! an order of magnitude slower, charged per whole 4 KiB block through
//! [`CostModel::cap_read_cost`] / [`CostModel::cap_write_cost`].
//!
//! Keeping both tiers on one device keeps the crash machinery whole: a
//! [`crate::CrashImage`] snapshots both tiers atomically, and a capacity
//! write becomes durable at the next ordering fence — in practice the
//! journal-commit fence that publishes the segment-location record that
//! points at it, which is exactly the ordering tiered migration needs
//! (data durable no later than the metadata that references it).
//!
//! [`TieredDevice`] is a thin, cheaply-clonable view (an `Arc` plus the
//! boundary) that file systems construct from their superblock geometry;
//! [`DeviceShape`] describes the two-region geometry when building devices.

use std::sync::Arc;

use crate::cost::CostModel;
use crate::device::PmemDevice;
use crate::stats::TimeCategory;

/// Size of one capacity-tier block in bytes.  Matches the file-system
/// block size so demoted extents translate one-to-one.
pub const CAP_BLOCK: usize = 4096;

/// Two-region device geometry: a fast PM tier plus an optional capacity
/// tier.  `flat` shapes (no capacity tier) describe the classic all-PM
/// devices every pre-tiering experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceShape {
    /// Bytes of fast, byte-addressable PM.
    pub pm_bytes: usize,
    /// Bytes of slow, block-granular capacity storage (0 = no tier).
    pub cap_bytes: usize,
}

impl DeviceShape {
    /// An all-PM device with no capacity tier.
    pub fn flat(pm_bytes: usize) -> Self {
        Self {
            pm_bytes,
            cap_bytes: 0,
        }
    }

    /// A PM tier of `pm_bytes` backed by a `cap_bytes` capacity tier.
    pub fn tiered(pm_bytes: usize, cap_bytes: usize) -> Self {
        Self {
            pm_bytes,
            cap_bytes,
        }
    }

    /// Total device size spanning both tiers.
    pub fn total_bytes(&self) -> usize {
        self.pm_bytes + self.cap_bytes
    }

    /// Whether a capacity tier is present.
    pub fn is_tiered(&self) -> bool {
        self.cap_bytes > 0
    }
}

/// A two-tier view over one [`PmemDevice`]: PM in `[0, pm_bytes)`,
/// capacity in `[pm_bytes, size)`.  Capacity accesses are addressed
/// *relative to the capacity region* and charged block-granular
/// capacity-tier costs; PM accesses keep going through the device
/// directly.
#[derive(Debug, Clone)]
pub struct TieredDevice {
    device: Arc<PmemDevice>,
    pm_bytes: usize,
}

impl TieredDevice {
    /// Wraps `device` with the PM/capacity boundary at `pm_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `pm_bytes` exceeds the device size.
    pub fn new(device: Arc<PmemDevice>, pm_bytes: usize) -> Self {
        assert!(
            pm_bytes <= device.size(),
            "PM tier ({pm_bytes} B) larger than device ({} B)",
            device.size()
        );
        Self { device, pm_bytes }
    }

    /// The underlying device spanning both tiers.
    pub fn device(&self) -> &Arc<PmemDevice> {
        &self.device
    }

    /// Bytes in the PM tier.
    pub fn pm_bytes(&self) -> usize {
        self.pm_bytes
    }

    /// Bytes in the capacity tier (0 when the device is all-PM).
    pub fn cap_bytes(&self) -> usize {
        self.device.size() - self.pm_bytes
    }

    /// Capacity-tier blocks available.
    pub fn cap_blocks(&self) -> u64 {
        (self.cap_bytes() / CAP_BLOCK) as u64
    }

    /// Whether a capacity tier is present.
    pub fn is_tiered(&self) -> bool {
        self.cap_bytes() > 0
    }

    fn check_cap_range(&self, offset: u64, len: usize) {
        let end = offset
            .checked_add(len as u64)
            .expect("capacity access offset overflow");
        assert!(
            end <= self.cap_bytes() as u64,
            "capacity access out of range: offset {offset} len {len} tier size {}",
            self.cap_bytes()
        );
    }

    /// Reads `buf.len()` bytes at capacity-relative `offset`, charging
    /// one block-granular capacity-tier request.
    pub fn cap_read(&self, offset: u64, buf: &mut [u8], cat: TimeCategory) {
        if buf.is_empty() {
            return;
        }
        self.check_cap_range(offset, buf.len());
        self.device
            .read_uncharged(self.pm_bytes as u64 + offset, buf);
        let ns = self.device.cost().cap_read_cost(buf.len());
        self.device.charge(cat, ns);
        self.device.stats().add_bytes_read(cat, buf.len() as u64);
        self.device.stats().add_cap_read(buf.len() as u64);
    }

    /// Writes `data` at capacity-relative `offset`, charging one
    /// block-granular capacity-tier request.  The bytes become durable at
    /// the next ordering fence — callers that journal a segment-location
    /// record afterwards get the data-before-metadata ordering for free
    /// from the commit fence.
    pub fn cap_write(&self, offset: u64, data: &[u8], cat: TimeCategory) {
        if data.is_empty() {
            return;
        }
        self.check_cap_range(offset, data.len());
        self.device
            .write_uncharged(self.pm_bytes as u64 + offset, data);
        let ns = self.device.cost().cap_write_cost(data.len());
        self.device.charge(cat, ns);
        self.device
            .stats()
            .add_bytes_written(cat, data.len() as u64);
        self.device.stats().add_cap_write(data.len() as u64);
    }

    /// The cost model shared by both tiers.
    pub fn cost(&self) -> &CostModel {
        self.device.cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::PmemBuilder;

    fn tiered(pm: usize, cap: usize) -> TieredDevice {
        let dev = PmemBuilder::new(pm + cap).build();
        TieredDevice::new(dev, pm)
    }

    #[test]
    fn shape_geometry() {
        let flat = DeviceShape::flat(1 << 20);
        assert!(!flat.is_tiered());
        assert_eq!(flat.total_bytes(), 1 << 20);
        let t = DeviceShape::tiered(1 << 20, 3 << 20);
        assert!(t.is_tiered());
        assert_eq!(t.total_bytes(), 4 << 20);
    }

    #[test]
    fn cap_roundtrip_and_stats() {
        let td = tiered(1 << 20, 1 << 20);
        assert_eq!(td.cap_bytes(), 1 << 20);
        assert_eq!(td.cap_blocks(), 256);
        let data = vec![0xabu8; 8192];
        td.cap_write(4096, &data, TimeCategory::UserData);
        let mut back = vec![0u8; 8192];
        td.cap_read(4096, &mut back, TimeCategory::UserData);
        assert_eq!(back, data);
        let snap = td.device().stats().snapshot();
        assert_eq!(snap.tier_cap_writes, 1);
        assert_eq!(snap.tier_cap_write_bytes, 8192);
        assert_eq!(snap.tier_cap_reads, 1);
        assert_eq!(snap.tier_cap_read_bytes, 8192);
    }

    #[test]
    fn cap_accesses_do_not_touch_pm() {
        let td = tiered(64 * 1024, 64 * 1024);
        let pm_probe = vec![0x11u8; 64];
        td.device()
            .write_uncharged(td.pm_bytes() as u64 - 64, &pm_probe);
        td.cap_write(0, &[0x22u8; 64], TimeCategory::UserData);
        let mut back = vec![0u8; 64];
        td.device()
            .read_uncharged(td.pm_bytes() as u64 - 64, &mut back);
        assert_eq!(back, pm_probe, "capacity offset 0 clobbered PM tail");
    }

    #[test]
    #[should_panic(expected = "capacity access out of range")]
    fn cap_access_past_tier_panics() {
        let td = tiered(1 << 20, 1 << 20);
        td.cap_write(td.cap_bytes() as u64, &[0u8; 1], TimeCategory::UserData);
    }

    #[test]
    fn cap_tier_charges_slower_costs() {
        let dev = PmemBuilder::new(2 << 20)
            .cost_model(CostModel::calibrated())
            .build();
        let td = TieredDevice::new(dev, 1 << 20);
        let t0 = td.device().clock().now_ns_f64();
        td.cap_write(0, &[0u8; 4096], TimeCategory::UserData);
        let cap_cost = td.device().clock().now_ns_f64() - t0;
        assert!(
            cap_cost > 5.0 * td.cost().pm_write_cost(4096),
            "capacity write ({cap_cost} ns) should dwarf a PM write"
        );
    }
}
