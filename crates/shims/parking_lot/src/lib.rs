//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this thin wrapper over
//! `std::sync` provides the API subset the workspace uses: `Mutex` and
//! `RwLock` whose guards are obtained without a poisoning `Result`.  Lock
//! poisoning is deliberately ignored (a panic while holding a lock aborts
//! the affected test anyway), matching parking_lot's semantics closely
//! enough for this code base.

#![warn(missing_docs)]

use std::fmt;
use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
};
use std::time::Duration;

// Guard types are the std guards directly; re-exported so callers can name
// them (real parking_lot exports its own guard types the same way).
pub use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// A condition variable usable with [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar(StdCondvar);

/// Result of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(StdCondvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(&mut guard.0, |g| {
            self.0.wait(g).unwrap_or_else(|e| e.into_inner())
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(&mut guard.0, |g| {
            let (g, res) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Replaces `*slot` with the guard returned by `f(old_guard)`.
///
/// `std`'s condvar consumes and returns the guard, while parking_lot's
/// borrows it; this adapter bridges the two calling conventions.  The
/// temporary ownership gap is invisible to callers because `f` always
/// returns a live guard for the same mutex.
fn take_guard<'a, T: ?Sized>(
    slot: &mut StdMutexGuard<'a, T>,
    f: impl FnOnce(StdMutexGuard<'a, T>) -> StdMutexGuard<'a, T>,
) {
    // SAFETY-free implementation: move out via Option dance is impossible on
    // &mut without a default, so use ptr::read/write carefully... Instead we
    // avoid unsafe entirely by requiring the closure to run inside
    // `replace_with`-style logic below.
    replace_with(slot, f);
}

fn replace_with<'a, T: ?Sized>(
    slot: &mut StdMutexGuard<'a, T>,
    f: impl FnOnce(StdMutexGuard<'a, T>) -> StdMutexGuard<'a, T>,
) {
    // An abort-on-unwind guard keeps the moved-out slot from being observed:
    // if `f` panics while the slot is logically empty the process aborts
    // instead of exposing an invalid guard.
    struct Abort;
    impl Drop for Abort {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let bomb = Abort;
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
        std::mem::forget(bomb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
