//! Offline stand-in for the `rand` crate.
//!
//! Provides the deterministic, seedable PRNG surface the workloads use:
//! [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`], the [`RngExt`]
//! extension trait (`random`, `random_range`), and
//! [`seq::SliceRandom::shuffle`].  The generator is splitmix64-seeded
//! xoshiro256**, which has excellent statistical quality for workload
//! generation (it is the same family the real `rand::rngs::SmallRng`
//! uses); the exact stream differs from upstream `rand`, which is fine
//! because every consumer seeds explicitly and only needs determinism
//! within this workspace.

#![warn(missing_docs)]

/// Core random-number-generator trait: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard RNG: xoshiro256** seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ];
            Self { s }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A value that can be sampled uniformly from the full `next_u64` stream.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.  Panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty random_range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Extension methods every RNG gets, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// Draws one uniformly distributed value of an inferred type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Alias kept for call sites written against rand 0.8 (`gen_range`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Re-export under the rand 0.8 name as well.
pub use RngExt as Rng;

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chooses one element, or `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(5u32..=15);
            assert!((5..=15).contains(&w));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u64> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice fully ordered");
    }
}
