//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the benches use — `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`, `Bencher::iter`
//! and the `criterion_group!`/`criterion_main!` macros — with a simple
//! timed runner: each benchmark is warmed up briefly, then run for a fixed
//! number of samples whose median time per iteration is printed.  There is
//! no statistical analysis or HTML report; the point is that
//! `cargo bench` compiles and produces comparable numbers offline.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so call sites can use `criterion::black_box` too.
pub use std::hint::black_box;

/// The benchmark context handed to registered functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: find an iteration count that takes a measurable slice of
        // time (at least ~2 ms per sample) without running forever.
        let mut iters = 1u64;
        loop {
            bencher.iters = iters;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            if bencher.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        let best = samples_ns.first().copied().unwrap_or(median);
        println!(
            "  {id}: median {median:.1} ns/iter (best {best:.1} ns/iter, {iters} iters/sample)"
        );
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the sample's iteration count, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_the_closure_and_times_it() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        let mut count = 0u64;
        group.sample_size(2).bench_function("count", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        group.finish();
        assert!(count > 0);
    }
}
