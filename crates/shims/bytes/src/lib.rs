//! Offline stand-in for the `bytes` crate.
//!
//! Implements the serialization surface `apps::waldb` uses: [`BytesMut`]
//! as a growable little-endian builder (via [`BufMut`]) and [`Buf`] as a
//! consuming cursor implemented for `&[u8]`.

#![warn(missing_docs)]

/// An immutable chunk of bytes (thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies the contents into a plain `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// A cursor over a buffer of bytes, consumed front to back.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes.  Panics when fewer remain.
    fn advance(&mut self, n: usize);

    /// Copies the next `len` bytes out, consuming them.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;

    /// Reads the next byte.
    fn get_u8(&mut self) -> u8;

    /// Reads the next little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;

    /// Reads the next little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Reads the next little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "Buf::advance past end");
        *self = &self[n..];
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes(self[..len].to_vec());
        self.advance(len);
        out
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self[..2].try_into().expect("two bytes"));
        self.advance(2);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().expect("four bytes"));
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().expect("eight bytes"));
        self.advance(8);
        v
    }
}

/// A sink for serialized bytes.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);

    /// Appends a slice verbatim.
    fn put_slice(&mut self, v: &[u8]);
}

/// A growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// Creates an empty buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a plain `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Empties the buffer, keeping its capacity.
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.0.extend_from_slice(v);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_builder_and_cursor() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16_le(300);
        b.put_u64_le(1 << 40);
        b.put_slice(b"xyz");
        let mut cursor = &b[..];
        assert_eq!(cursor.remaining(), 1 + 2 + 8 + 3);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16_le(), 300);
        assert_eq!(cursor.get_u64_le(), 1 << 40);
        cursor.advance(3);
        assert_eq!(cursor.remaining(), 0);
    }
}
