//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, strategies for
//! integer ranges, tuples, [`Just`], `any::<T>()`, `prop::collection::vec`
//! and `prop_oneof!`, plus the [`proptest!`] test macro, `prop_assert!`
//! assertions and [`ProptestConfig`].  Cases are generated from a
//! deterministic per-test seed; there is no shrinking — a failing case
//! panics with the case number so it can be reproduced by rerunning.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::RngCore;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T` (`any::<u8>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_strategy_for_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_strategy_for_tuple!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Strategy combinators that need named types.
pub mod strategy {
    use super::{Strategy, TestRng};
    use rand::RngCore;

    /// A boxed, object-safe strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    /// Boxes a strategy (helper used by `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Uniform choice between several strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Creates a union over `options`; each case picks one uniformly.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::RngCore;

        /// Accepted size arguments for [`vec()`]: an exact length or a
        /// half-open range of lengths.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            min: usize,
            max_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self {
                    min: n,
                    max_exclusive: n + 1,
                }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                Self {
                    min: r.start,
                    max_exclusive: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                Self {
                    min: *r.start(),
                    max_exclusive: *r.end() + 1,
                }
            }
        }

        /// Strategy generating `Vec`s of values from an element strategy.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors whose length is drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max_exclusive - self.size.min) as u64;
                let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Environment variable that perturbs every property's value stream.
///
/// Set `CHAOS_SEED` (decimal or `0x`-prefixed hex) to explore a
/// different deterministic stream per property; a failing run prints
/// the value to export to reproduce it.  Unset, every run uses the
/// fixed default stream (seed `0`).
pub const CHAOS_SEED_ENV: &str = "CHAOS_SEED";

/// The `CHAOS_SEED` override currently in effect (`0` when unset or
/// unparsable).
pub fn chaos_seed() -> u64 {
    std::env::var(CHAOS_SEED_ENV)
        .ok()
        .and_then(|raw| {
            let raw = raw.trim();
            match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => raw.parse().ok(),
            }
        })
        .unwrap_or(0)
}

/// Runs one property: `cases` seeded executions of `body`.
///
/// Called by the [`proptest!`] macro; public so the macro expansion can
/// reach it.  The per-test seed mixes the property name (so different
/// properties see different streams) with [`chaos_seed`] (so `CHAOS_SEED`
/// steers every property to fresh cases); a failure reports the case
/// index and the `CHAOS_SEED` to export to reproduce it.
pub fn run_proptest(
    config: ProptestConfig,
    name: &str,
    mut body: impl FnMut(&mut TestRng) -> Result<(), String>,
) {
    use rand::SeedableRng;
    let name_seed: u64 = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    });
    let chaos = chaos_seed();
    let base = name_seed ^ chaos.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
    for case in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(base ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15));
        if let Err(msg) = body(&mut rng) {
            panic!(
                "property '{name}' failed on case {case}/{} (reproduce with CHAOS_SEED={chaos:#x}): {msg}",
                config.cases
            );
        }
    }
}

/// Declares property tests, mirroring proptest's macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    (@funcs ($cfg:expr); $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest($cfg, stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                let result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                result
            });
        }
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    (@funcs ($cfg:expr);) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Fails the enclosing property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Fails the enclosing property when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` == `{}` (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Uniform choice between strategy expressions.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![ $( $crate::strategy::boxed($strat) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Sanity: generated values respect their strategies.
        #[test]
        fn generated_values_respect_strategies(
            small in 1u8..5,
            items in prop::collection::vec(any::<u16>(), 2..6),
            tagged in prop_oneof![
                (0u32..10).prop_map(|v| ("low", v)),
                Just(("fixed", 99u32)),
            ],
        ) {
            prop_assert!((1..5).contains(&small));
            prop_assert!((2..6).contains(&items.len()));
            prop_assert!(tagged.0 == "low" || tagged.1 == 99);
            prop_assert_eq!(items.len(), items.len());
            prop_assert_ne!(items.len(), 0);
        }
    }

    #[test]
    fn chaos_seed_parses_decimal_and_hex() {
        std::env::set_var(super::CHAOS_SEED_ENV, "0x2A");
        assert_eq!(super::chaos_seed(), 42);
        std::env::set_var(super::CHAOS_SEED_ENV, "7");
        assert_eq!(super::chaos_seed(), 7);
        std::env::remove_var(super::CHAOS_SEED_ENV);
        assert_eq!(super::chaos_seed(), 0);
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_panics_with_case_number() {
        super::run_proptest(ProptestConfig::with_cases(3), "always_fails", |_rng| {
            Err("nope".to_string())
        });
    }
}
