//! Compare the three SplitFS consistency modes (POSIX, sync, strict) and
//! their closest baselines on the same append-heavy workload, printing the
//! guarantee matrix of paper Table 3 next to measured per-operation cost.
//!
//! Run with: `cargo run --release --example mode_comparison`

use std::sync::Arc;

use splitfs_repro::baselines::{Nova, NovaMode, Pmfs};
use splitfs_repro::kernelfs::Ext4Dax;
use splitfs_repro::pmem::PmemBuilder;
use splitfs_repro::splitfs::{Mode, SplitConfig, SplitFs};
use splitfs_repro::vfs::{FileSystem, OpenFlags};

const APPENDS: u64 = 2000;

fn measure_append_cost(fs: &Arc<dyn FileSystem>) -> f64 {
    let device = Arc::clone(fs.device());
    let fd = fs.open("/appends.dat", OpenFlags::create()).expect("open");
    let block = vec![7u8; 4096];
    let start = device.clock().now_ns_f64();
    for i in 0..APPENDS {
        fs.append(fd, &block).expect("append");
        if i % 10 == 9 {
            fs.fsync(fd).expect("fsync");
        }
    }
    fs.fsync(fd).expect("fsync");
    fs.close(fd).expect("close");
    (device.clock().now_ns_f64() - start) / APPENDS as f64
}

fn device() -> Arc<splitfs_repro::pmem::PmemDevice> {
    PmemBuilder::new(512 * 1024 * 1024)
        .track_persistence(false)
        .build()
}

fn main() {
    println!("Guarantee matrix (paper Table 3):\n");
    println!(
        "{:<16} {:>10} {:>12} {:>14} {:>16}",
        "mode", "sync data", "atomic data", "sync metadata", "atomic metadata"
    );
    for mode in [Mode::Posix, Mode::Sync, Mode::Strict] {
        let g = mode.guarantees();
        println!(
            "{:<16} {:>10} {:>12} {:>14} {:>16}",
            mode.label(),
            g.sync_data_ops,
            g.atomic_data_ops,
            g.sync_metadata_ops,
            g.atomic_metadata_ops
        );
    }

    println!("\nMean cost of a 4 KiB append (fsync every 10), simulated ns:\n");
    let mut rows: Vec<(String, f64)> = Vec::new();

    for mode in [Mode::Posix, Mode::Sync, Mode::Strict] {
        let kernel = Ext4Dax::mkfs(device()).expect("mkfs");
        let fs: Arc<dyn FileSystem> =
            SplitFs::new(kernel, SplitConfig::new(mode)).expect("splitfs");
        rows.push((mode.label().to_string(), measure_append_cost(&fs)));
    }
    let ext4: Arc<dyn FileSystem> = Ext4Dax::mkfs(device()).expect("mkfs");
    rows.push(("ext4-DAX (POSIX class)".into(), measure_append_cost(&ext4)));
    let pmfs: Arc<dyn FileSystem> = Pmfs::new(device());
    rows.push(("PMFS (sync class)".into(), measure_append_cost(&pmfs)));
    let nova: Arc<dyn FileSystem> = Nova::new(device(), NovaMode::Strict);
    rows.push((
        "NOVA-strict (strict class)".into(),
        measure_append_cost(&nova),
    ));

    for (name, ns) in &rows {
        println!("  {name:<28} {ns:>10.0} ns/append");
    }

    println!("\nEach SplitFS mode should beat the baseline of its own guarantee class,");
    println!("and stronger guarantees should cost more than weaker ones within SplitFS.");
}
