//! Demonstrate SplitFS strict-mode crash consistency: appends that were
//! never fsync-ed survive a crash because they are staged durably and
//! recorded in the operation log, and recovery replays them into the
//! target file (paper §3.3 / §5.3).
//!
//! Run with: `cargo run --example crash_recovery`

use std::sync::Arc;

use splitfs_repro::kernelfs::Ext4Dax;
use splitfs_repro::pmem::PmemBuilder;
use splitfs_repro::splitfs::{recover, Mode, SplitConfig, SplitFs};
use splitfs_repro::vfs::{FileSystem, OpenFlags};

fn main() {
    // Persistence tracking stays ON: we want real crash semantics.
    let device = PmemBuilder::new(512 * 1024 * 1024).build();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).expect("mkfs");
    let config = SplitConfig::new(Mode::Strict);
    let fs = SplitFs::new(Arc::clone(&kernel), config.clone()).expect("splitfs");

    // A database-style workload: append committed transactions to a log.
    let fd = fs.open("/txn.log", OpenFlags::create()).expect("open");
    let mut expected = Vec::new();
    for i in 0..32u32 {
        let record = format!("txn {i:05} COMMIT\n");
        fs.append(fd, record.as_bytes()).expect("append");
        expected.extend_from_slice(record.as_bytes());
    }
    println!(
        "appended 32 transaction records ({} bytes), operation log holds {} entries",
        expected.len(),
        fs.oplog_entries()
    );
    println!("NOT calling fsync — in strict mode each append is already durable and atomic");

    // Power failure: everything that was not flushed+fenced is gone.
    device.crash();
    println!("\n-- crash injected --\n");

    // Reboot: mount the kernel file system (journal recovery) and replay
    // the SplitFS operation log.
    let kernel_after = Ext4Dax::mount(Arc::clone(&device)).expect("remount after crash");
    let report = recover(&kernel_after, &config).expect("splitfs recovery");
    println!(
        "recovery: {} log entries scanned, {} staged writes replayed, {} already applied",
        report.entries_scanned, report.replayed, report.already_applied
    );

    let data = kernel_after
        .read_file("/txn.log")
        .expect("read after recovery");
    assert_eq!(
        data, expected,
        "every committed append must survive the crash"
    );
    println!(
        "verified: /txn.log holds all {} bytes written before the crash",
        data.len()
    );

    // The file system is usable again through a fresh SplitFS instance.
    let fs_after = SplitFs::new(kernel_after, config).expect("restart splitfs");
    let fd = fs_after
        .open("/txn.log", OpenFlags::append())
        .expect("reopen");
    fs_after
        .append(fd, b"txn 00032 COMMIT (post-recovery)\n")
        .expect("append");
    fs_after.fsync(fd).expect("fsync");
    println!("appended one more transaction after recovery — the store keeps working");
}
