//! Quickstart: create a SplitFS instance on an emulated PM device, write a
//! file with one gathered `appendv`, fsync (which relinks the staged
//! data), and read it back zero-copy through a `ReadView` — while printing
//! what the split architecture did under the hood.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use splitfs_repro::kernelfs::Ext4Dax;
use splitfs_repro::pmem::{PmemBuilder, TimeCategory};
use splitfs_repro::splitfs::{Mode, SplitConfig, SplitFs};
use splitfs_repro::vfs::{FileSystem, IoVec, OpenFlags};

fn main() {
    // 1. An emulated persistent-memory device (512 MiB).
    let device = PmemBuilder::new(512 * 1024 * 1024)
        .track_persistence(false)
        .build();

    // 2. The kernel file system (K-Split) formatted on it.
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).expect("format the device");

    // 3. A SplitFS (U-Split) instance in strict mode: every operation is
    //    synchronous and atomic.
    let fs = SplitFs::new(kernel, SplitConfig::new(Mode::Strict)).expect("start SplitFS");

    println!(
        "mounted {} on a {} MiB device",
        fs.name(),
        device.size() / (1024 * 1024)
    );

    // 4. Write a log file with ONE gathered append: all 16 records go to
    //    staging together, their operation-log entries group-commit under a
    //    single fence.  The parent directory must exist first: metadata
    //    operations are passed through to the kernel.
    fs.mkdir("/app").expect("mkdir");
    let fd = fs.open("/app/wal.log", OpenFlags::create()).expect("open");

    let records: Vec<String> = (0..16u32)
        .map(|i| format!("record-{i:04}: persistent memory is byte addressable\n"))
        .collect();
    let iov: Vec<IoVec<'_>> = records.iter().map(|r| IoVec::new(r.as_bytes())).collect();

    let before = device.stats().snapshot();
    fs.appendv(fd, &iov).expect("appendv");
    let staged = device.stats().snapshot().delta_since(&before);
    println!(
        "gathered 16 records in one appendv: {} bytes staged, {} kernel traps, \
         {} fences, {} op-log entries",
        staged.written(TimeCategory::UserData),
        staged.kernel_traps,
        staged.fences,
        fs.oplog_entries(),
    );

    // 5. fsync: the staged appends are relinked into the target file —
    //    a metadata-only operation, no data copy.
    let before = device.stats().snapshot();
    fs.fsync(fd).expect("fsync");
    let relinked = device.stats().snapshot().delta_since(&before);
    println!(
        "fsync relinked the staged data: {} user-data bytes rewritten (expected ~0), {} kernel traps",
        relinked.written(TimeCategory::UserData),
        relinked.kernel_traps,
    );

    // 6. Read it back zero-copy: the view borrows the mapped blocks that
    //    were just relinked into the file — no memcpy.
    let size = fs.fstat(fd).expect("fstat").size as usize;
    let before = device.stats().snapshot();
    let view = fs.read_view(fd, 0, size).expect("read view");
    let lines = view
        .split(|&b| b == b'\n')
        .filter(|l| !l.is_empty())
        .count();
    let zero_copy = view.is_zero_copy();
    drop(view);
    let read_delta = device.stats().snapshot().delta_since(&before);
    println!(
        "read back {size} bytes ({lines} records) — zero-copy: {zero_copy}, \
         {} bytes served without memcpy",
        read_delta.zero_copy_read_bytes,
    );

    fs.close(fd).expect("close");

    // 7. Where did the simulated time go?
    let snap = device.stats().snapshot();
    println!("\nsimulated time breakdown:");
    for cat in [
        TimeCategory::UserData,
        TimeCategory::Metadata,
        TimeCategory::Journal,
        TimeCategory::OpLog,
        TimeCategory::Software,
    ] {
        println!("  {:>10}: {:>10.0} ns", cat.label(), snap.time(cat));
    }
    println!(
        "  software overhead = {:.0} ns ({:.1}% of total)",
        snap.software_overhead_ns(),
        snap.software_overhead_ns() / snap.total_time_ns() * 100.0
    );
}
