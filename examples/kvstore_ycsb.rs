//! Run the LevelDB-like LSM key-value store under YCSB workload A on both
//! ext4 DAX and SplitFS-POSIX, and compare throughput and software
//! overhead — a miniature version of the paper's Figure 6 experiment.
//!
//! Run with: `cargo run --release --example kvstore_ycsb`

use std::sync::Arc;

use splitfs_repro::kernelfs::Ext4Dax;
use splitfs_repro::pmem::PmemBuilder;
use splitfs_repro::splitfs::{Mode, SplitConfig, SplitFs};
use splitfs_repro::vfs::FileSystem;
use splitfs_repro::workloads::appbench::{run_ycsb, YcsbRunConfig};
use splitfs_repro::workloads::ycsb::YcsbWorkload;

fn build_ext4() -> Arc<dyn FileSystem> {
    let device = PmemBuilder::new(512 * 1024 * 1024)
        .track_persistence(false)
        .build();
    Ext4Dax::mkfs(device).expect("mkfs")
}

fn build_splitfs() -> Arc<dyn FileSystem> {
    let device = PmemBuilder::new(512 * 1024 * 1024)
        .track_persistence(false)
        .build();
    let kernel = Ext4Dax::mkfs(device).expect("mkfs");
    SplitFs::new(kernel, SplitConfig::new(Mode::Posix)).expect("splitfs")
}

fn main() {
    let config = YcsbRunConfig {
        record_count: 5_000,
        op_count: 5_000,
        value_size: 1000,
        ..YcsbRunConfig::default()
    };

    println!(
        "YCSB-A on the LSM store: {} records loaded, {} operations (50% read / 50% update)\n",
        config.record_count, config.op_count
    );
    println!(
        "{:<16} {:>14} {:>14} {:>20} {:>12}",
        "file system", "load kops/s", "run kops/s", "sw overhead (run)", "write amp"
    );

    for (name, fs) in [
        ("ext4-DAX", build_ext4()),
        ("SplitFS-POSIX", build_splitfs()),
    ] {
        let result = run_ycsb(&fs, YcsbWorkload::A, &config).expect("ycsb run");
        println!(
            "{:<16} {:>14.1} {:>14.1} {:>18.1}% {:>11.2}x",
            name,
            result.load.kops_per_sec(),
            result.run.kops_per_sec(),
            result.run.software_overhead_fraction() * 100.0,
            result.run.write_amplification().unwrap_or(f64::NAN),
        );
    }

    println!("\nHigher run throughput and lower software overhead for SplitFS-POSIX");
    println!("reproduce the shape of the paper's Figure 5 / Figure 6 results.");
}
