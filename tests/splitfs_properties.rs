//! Property-based tests: SplitFS (all three modes) must behave like a
//! simple in-memory file model for arbitrary sequences of data operations,
//! and crash-recovery in strict mode must never lose an acknowledged
//! append.

use std::sync::Arc;

use proptest::prelude::*;
use splitfs_repro::kernelfs::Ext4Dax;
use splitfs_repro::pmem::PmemBuilder;
use splitfs_repro::splitfs::{recover, Mode, SplitConfig, SplitFs};
use splitfs_repro::vfs::{FileSystem, OpenFlags};

/// One step of the generated workload.
#[derive(Debug, Clone)]
enum Op {
    Append(Vec<u8>),
    WriteAt(u16, Vec<u8>),
    Fsync,
    Truncate(u16),
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (prop::collection::vec(any::<u8>(), 1..2000)).prop_map(Op::Append),
        (any::<u16>(), prop::collection::vec(any::<u8>(), 1..1500))
            .prop_map(|(off, data)| Op::WriteAt(off, data)),
        Just(Op::Fsync),
        any::<u16>().prop_map(Op::Truncate),
        Just(Op::Reopen),
    ]
}

/// Applies an op to the reference model (a plain byte vector).
fn apply_model(model: &mut Vec<u8>, op: &Op) {
    match op {
        Op::Append(data) => model.extend_from_slice(data),
        Op::WriteAt(off, data) => {
            let off = *off as usize;
            if model.len() < off + data.len() {
                model.resize(off + data.len(), 0);
            }
            model[off..off + data.len()].copy_from_slice(data);
        }
        Op::Truncate(size) => {
            let size = *size as usize;
            if model.len() > size {
                model.truncate(size);
            } else {
                model.resize(size, 0);
            }
        }
        Op::Fsync | Op::Reopen => {}
    }
}

fn run_against_splitfs(mode: Mode, ops: &[Op]) -> (Vec<u8>, Vec<u8>) {
    let device = PmemBuilder::new(192 * 1024 * 1024)
        .track_persistence(false)
        .build();
    let kernel = Ext4Dax::mkfs(device).unwrap();
    let config = SplitConfig::new(mode)
        .with_staging(2, 4 * 1024 * 1024)
        .with_oplog_size(512 * 1024);
    let fs = SplitFs::new(kernel, config).unwrap();

    let mut model = Vec::new();
    let mut fd = fs.open("/prop.dat", OpenFlags::create()).unwrap();
    for op in ops {
        match op {
            Op::Append(data) => {
                fs.append(fd, data).unwrap();
            }
            Op::WriteAt(off, data) => {
                fs.write_at(fd, *off as u64, data).unwrap();
            }
            Op::Fsync => fs.fsync(fd).unwrap(),
            Op::Truncate(size) => fs.ftruncate(fd, *size as u64).unwrap(),
            Op::Reopen => {
                fs.close(fd).unwrap();
                fd = fs.open("/prop.dat", OpenFlags::read_write()).unwrap();
            }
        }
        apply_model(&mut model, op);
    }
    fs.fsync(fd).unwrap();
    fs.close(fd).unwrap();
    (fs.read_file("/prop.dat").unwrap(), model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary operation sequences observe the same bytes on SplitFS as
    /// on the in-memory reference model, in every mode.
    #[test]
    fn splitfs_matches_reference_model(
        ops in prop::collection::vec(op_strategy(), 1..25),
        mode_idx in 0usize..3,
    ) {
        let mode = [Mode::Posix, Mode::Sync, Mode::Strict][mode_idx];
        let (actual, expected) = run_against_splitfs(mode, &ops);
        prop_assert_eq!(actual, expected);
    }

    /// In strict mode, any prefix of appends acknowledged before a crash is
    /// recovered completely — the file never loses or corrupts acknowledged
    /// data, even without an fsync.
    #[test]
    fn strict_mode_appends_survive_crashes(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..3000), 1..12),
    ) {
        let device = PmemBuilder::new(192 * 1024 * 1024).build();
        let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
        let config = SplitConfig::new(Mode::Strict)
            .with_staging(2, 4 * 1024 * 1024)
            .with_oplog_size(256 * 1024);
        let fs = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();

        let fd = fs.open("/crash.dat", OpenFlags::create()).unwrap();
        let mut expected = Vec::new();
        for chunk in &chunks {
            fs.append(fd, chunk).unwrap();
            expected.extend_from_slice(chunk);
        }
        device.crash();

        let kernel2 = Ext4Dax::mount(Arc::clone(&device)).unwrap();
        recover(&kernel2, &config).unwrap();
        let data = kernel2.read_file("/crash.dat").unwrap();
        prop_assert_eq!(data, expected);
    }
}
