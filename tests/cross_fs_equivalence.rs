//! Cross-crate integration test: the same application workloads must
//! produce identical observable state on every file system in the
//! workspace, from the ext4-DAX kernel substrate to the baselines and all
//! three SplitFS modes.  This is the repository-wide version of the
//! paper's §5.3 correctness validation.

use std::sync::Arc;

use splitfs_repro::apps::aof::{AofStore, FsyncPolicy};
use splitfs_repro::apps::lsm::{LsmConfig, LsmStore};
use splitfs_repro::baselines::{Nova, NovaMode, Pmfs, Strata};
use splitfs_repro::kernelfs::Ext4Dax;
use splitfs_repro::pmem::PmemBuilder;
use splitfs_repro::splitfs::{Mode, SplitConfig, SplitFs};
use splitfs_repro::vfs::{FileSystem, OpenFlags};

fn all_filesystems() -> Vec<Arc<dyn FileSystem>> {
    let mut out: Vec<Arc<dyn FileSystem>> = Vec::new();
    for i in 0..7 {
        let device = PmemBuilder::new(256 * 1024 * 1024)
            .track_persistence(false)
            .build();
        match i {
            0 => out.push(Ext4Dax::mkfs(device).unwrap()),
            1 => out.push(Pmfs::new(device)),
            2 => out.push(Nova::new(device, NovaMode::Relaxed)),
            3 => out.push(Nova::new(device, NovaMode::Strict)),
            4 => out.push(Strata::new(device)),
            5 => {
                let kernel = Ext4Dax::mkfs(device).unwrap();
                out.push(SplitFs::new(kernel, SplitConfig::new(Mode::Posix)).unwrap());
            }
            _ => {
                let kernel = Ext4Dax::mkfs(device).unwrap();
                out.push(SplitFs::new(kernel, SplitConfig::new(Mode::Strict)).unwrap());
            }
        }
    }
    out
}

#[test]
fn posix_file_operations_agree_across_all_filesystems() {
    let mut states = Vec::new();
    for fs in all_filesystems() {
        fs.mkdir("/work").unwrap();
        let fd = fs.open("/work/data.bin", OpenFlags::create()).unwrap();
        // Mixed appends and overwrites, some unaligned.
        for i in 0..30u32 {
            fs.append(fd, &vec![i as u8; 700]).unwrap();
        }
        fs.write_at(fd, 1000, b"OVERWRITTEN-REGION").unwrap();
        fs.fsync(fd).unwrap();
        fs.ftruncate(fd, 15_000).unwrap();
        fs.close(fd).unwrap();
        fs.rename("/work/data.bin", "/work/renamed.bin").unwrap();

        let content = fs.read_file("/work/renamed.bin").unwrap();
        let mut listing = fs.readdir("/work").unwrap();
        listing.sort();
        states.push((fs.name(), content, listing));
    }
    let (_, first_content, first_listing) = &states[0];
    for (name, content, listing) in &states {
        assert_eq!(content, first_content, "file content differs on {name}");
        assert_eq!(
            listing, first_listing,
            "directory listing differs on {name}"
        );
    }
}

#[test]
fn lsm_store_produces_identical_results_on_every_filesystem() {
    let mut answers = Vec::new();
    for fs in all_filesystems() {
        let mut store = LsmStore::open(
            Arc::clone(&fs),
            LsmConfig {
                dir: "/db".to_string(),
                memtable_bytes: 32 * 1024,
                sync_writes: false,
                compaction_trigger: 3,
            },
        )
        .unwrap();
        for i in 0..400u32 {
            store
                .put(
                    format!("key{:05}", i % 150).as_bytes(),
                    format!("v{i}").as_bytes(),
                )
                .unwrap();
        }
        store.flush_memtable().unwrap();
        let mut probe = Vec::new();
        for key in (0..150u32).step_by(13) {
            probe.push(store.get(format!("key{key:05}").as_bytes()).unwrap());
        }
        let scan = store.scan(b"key00050", 5).unwrap();
        answers.push((fs.name(), probe, scan));
    }
    let (_, first_probe, first_scan) = &answers[0];
    for (name, probe, scan) in &answers {
        assert_eq!(probe, first_probe, "LSM point reads differ on {name}");
        assert_eq!(scan, first_scan, "LSM scans differ on {name}");
    }
}

#[test]
fn aof_store_state_agrees_across_filesystems() {
    let mut sizes = Vec::new();
    for fs in all_filesystems() {
        let mut store =
            AofStore::open(Arc::clone(&fs), "/redis.aof", FsyncPolicy::EveryN(16)).unwrap();
        for i in 0..200 {
            store.set(&format!("k{i}"), &format!("v{i}")).unwrap();
        }
        for i in (0..200).step_by(3) {
            store.del(&format!("k{i}")).unwrap();
        }
        store.shutdown().unwrap();
        // Reopen to force a full AOF replay.
        let store = AofStore::open(Arc::clone(&fs), "/redis.aof", FsyncPolicy::Never).unwrap();
        sizes.push((
            fs.name(),
            store.len(),
            store.get("k1").cloned(),
            store.get("k3").cloned(),
        ));
    }
    let (_, first_len, first_k1, first_k3) = &sizes[0];
    for (name, len, k1, k3) in &sizes {
        assert_eq!(len, first_len, "AOF key count differs on {name}");
        assert_eq!(k1, first_k1, "AOF value differs on {name}");
        assert_eq!(k3, first_k3, "AOF deleted key differs on {name}");
    }
}
