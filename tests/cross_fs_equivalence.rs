//! Cross-crate integration test: the same application workloads must
//! produce identical observable state on every file system in the
//! workspace, from the ext4-DAX kernel substrate to the baselines and all
//! three SplitFS modes.  This is the repository-wide version of the
//! paper's §5.3 correctness validation.

use std::sync::Arc;

use proptest::prelude::*;
use splitfs_repro::apps::aof::{AofStore, FsyncPolicy};
use splitfs_repro::apps::lsm::{LsmConfig, LsmStore};
use splitfs_repro::baselines::{Nova, NovaMode, Pmfs, Strata};
use splitfs_repro::kernelfs::Ext4Dax;
use splitfs_repro::pmem::PmemBuilder;
use splitfs_repro::splitfs::{Mode, SplitConfig, SplitFs};
use splitfs_repro::vfs::{FileSystem, IoVec, OpenFlags};

fn all_filesystems() -> Vec<Arc<dyn FileSystem>> {
    let mut out: Vec<Arc<dyn FileSystem>> = Vec::new();
    for i in 0..7 {
        let device = PmemBuilder::new(256 * 1024 * 1024)
            .track_persistence(false)
            .build();
        match i {
            0 => out.push(Ext4Dax::mkfs(device).unwrap()),
            1 => out.push(Pmfs::new(device)),
            2 => out.push(Nova::new(device, NovaMode::Relaxed)),
            3 => out.push(Nova::new(device, NovaMode::Strict)),
            4 => out.push(Strata::new(device)),
            5 => {
                let kernel = Ext4Dax::mkfs(device).unwrap();
                out.push(SplitFs::new(kernel, SplitConfig::new(Mode::Posix)).unwrap());
            }
            _ => {
                let kernel = Ext4Dax::mkfs(device).unwrap();
                out.push(SplitFs::new(kernel, SplitConfig::new(Mode::Strict)).unwrap());
            }
        }
    }
    out
}

#[test]
fn posix_file_operations_agree_across_all_filesystems() {
    let mut states = Vec::new();
    for fs in all_filesystems() {
        fs.mkdir("/work").unwrap();
        let fd = fs.open("/work/data.bin", OpenFlags::create()).unwrap();
        // Mixed appends and overwrites, some unaligned.
        for i in 0..30u32 {
            fs.append(fd, &vec![i as u8; 700]).unwrap();
        }
        fs.write_at(fd, 1000, b"OVERWRITTEN-REGION").unwrap();
        fs.fsync(fd).unwrap();
        fs.ftruncate(fd, 15_000).unwrap();
        fs.close(fd).unwrap();
        fs.rename("/work/data.bin", "/work/renamed.bin").unwrap();

        let content = fs.read_file("/work/renamed.bin").unwrap();
        let mut listing = fs.readdir("/work").unwrap();
        listing.sort();
        states.push((fs.name(), content, listing));
    }
    let (_, first_content, first_listing) = &states[0];
    for (name, content, listing) in &states {
        assert_eq!(content, first_content, "file content differs on {name}");
        assert_eq!(
            listing, first_listing,
            "directory listing differs on {name}"
        );
    }
}

#[test]
fn lsm_store_produces_identical_results_on_every_filesystem() {
    let mut answers = Vec::new();
    for fs in all_filesystems() {
        let mut store = LsmStore::open(
            Arc::clone(&fs),
            LsmConfig {
                dir: "/db".to_string(),
                memtable_bytes: 32 * 1024,
                sync_writes: false,
                compaction_trigger: 3,
            },
        )
        .unwrap();
        for i in 0..400u32 {
            store
                .put(
                    format!("key{:05}", i % 150).as_bytes(),
                    format!("v{i}").as_bytes(),
                )
                .unwrap();
        }
        store.flush_memtable().unwrap();
        let mut probe = Vec::new();
        for key in (0..150u32).step_by(13) {
            probe.push(store.get(format!("key{key:05}").as_bytes()).unwrap());
        }
        let scan = store.scan(b"key00050", 5).unwrap();
        answers.push((fs.name(), probe, scan));
    }
    let (_, first_probe, first_scan) = &answers[0];
    for (name, probe, scan) in &answers {
        assert_eq!(probe, first_probe, "LSM point reads differ on {name}");
        assert_eq!(scan, first_scan, "LSM scans differ on {name}");
    }
}

#[test]
fn vectored_and_batched_io_agrees_across_all_filesystems() {
    // Drive the whole new surface — appendv, writev_at, read_view,
    // fsync_many, fdatasync — with awkward (unaligned, empty, straddling)
    // shapes, and require byte-identical observable state everywhere.
    let mut states = Vec::new();
    for fs in all_filesystems() {
        fs.mkdir("/vec").unwrap();
        let a = fs.open("/vec/a.bin", OpenFlags::create()).unwrap();
        let b = fs.open("/vec/b.bin", OpenFlags::create()).unwrap();

        // Gathered appends from odd-sized parts, including an empty slice.
        let p1 = vec![0x11u8; 700];
        let p2 = vec![0x22u8; 4096];
        let p3 = vec![0x33u8; 3];
        let iov = [
            IoVec::new(&p1),
            IoVec::new(&[]),
            IoVec::new(&p2),
            IoVec::new(&p3),
        ];
        assert_eq!(fs.appendv(a, &iov).unwrap(), 700 + 4096 + 3);
        fs.appendv(b, &iov).unwrap();
        fs.appendv(b, &[IoVec::new(&p3)]).unwrap();

        // A vectored overwrite straddling the end of file.
        let q1 = vec![0x44u8; 1000];
        let q2 = vec![0x55u8; 6000];
        assert_eq!(
            fs.writev_at(a, 4000, &[IoVec::new(&q1), IoVec::new(&q2)])
                .unwrap(),
            7000
        );
        fs.fdatasync(a).unwrap();

        // Batched durability over both files (duplicates allowed).
        fs.fsync_many(&[a, b, a]).unwrap();

        // read_view windows must agree with the full contents.
        let full_a = fs.read_file("/vec/a.bin").unwrap();
        let window = fs.read_view(a, 3500, 2000).unwrap();
        assert_eq!(
            window.as_slice(),
            &full_a[3500..5500],
            "read_view window disagrees with read_file on {}",
            fs.name()
        );
        let clipped = fs.read_view(a, full_a.len() as u64 - 10, 100).unwrap();
        assert_eq!(clipped.len(), 10, "view must clip at EOF on {}", fs.name());
        assert!(fs
            .read_view(a, full_a.len() as u64 + 5, 10)
            .unwrap()
            .is_empty());
        drop(window);
        drop(clipped);

        let full_b = fs.read_file("/vec/b.bin").unwrap();
        fs.close(a).unwrap();
        fs.close(b).unwrap();
        states.push((fs.name(), full_a, full_b));
    }
    let (_, first_a, first_b) = &states[0];
    for (name, a, b) in &states {
        assert_eq!(a, first_a, "vectored file A differs on {name}");
        assert_eq!(b, first_b, "vectored file B differs on {name}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// An arbitrary IoVec split of a buffer, appended with one `appendv`,
    /// produces exactly the same bytes as one contiguous `write_at` of the
    /// unsplit buffer — on a kernel-backed SplitFS and on the kernel file
    /// system itself.
    #[test]
    fn iovec_split_roundtrips_like_contiguous_write(
        data in prop::collection::vec(any::<u8>(), 1..6000),
        cut_points in prop::collection::vec(any::<u16>(), 0..5),
    ) {
        // Turn the arbitrary cut points into a partition of `data`.
        let mut cuts: Vec<usize> = cut_points
            .iter()
            .map(|&c| c as usize % (data.len() + 1))
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut slices: Vec<&[u8]> = Vec::new();
        let mut prev = 0usize;
        for &c in &cuts {
            slices.push(&data[prev..c]);
            prev = c;
        }
        slices.push(&data[prev..]);
        let iov: Vec<IoVec<'_>> = slices.iter().map(|s| IoVec::new(s)).collect();

        let filesystems: Vec<Arc<dyn FileSystem>> = {
            let device = PmemBuilder::new(96 * 1024 * 1024)
                .track_persistence(false)
                .build();
            let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
            let split_device = PmemBuilder::new(96 * 1024 * 1024)
                .track_persistence(false)
                .build();
            let split_kernel = Ext4Dax::mkfs(split_device).unwrap();
            vec![
                kernel,
                SplitFs::new(split_kernel, SplitConfig::new(Mode::Strict)).unwrap(),
            ]
        };
        for fs in filesystems {
            let contiguous = fs.open("/contig.bin", OpenFlags::create()).unwrap();
            fs.write_at(contiguous, 0, &data).unwrap();
            fs.fsync(contiguous).unwrap();

            let gathered = fs.open("/gather.bin", OpenFlags::create()).unwrap();
            let n = fs.appendv(gathered, &iov).unwrap();
            prop_assert_eq!(n, data.len());
            fs.fsync(gathered).unwrap();

            let a = fs.read_file("/contig.bin").unwrap();
            let b = fs.read_file("/gather.bin").unwrap();
            prop_assert_eq!(&a, &data, "contiguous write diverged on {}", fs.name());
            prop_assert_eq!(&b, &data, "gathered appendv diverged on {}", fs.name());
            fs.close(contiguous).unwrap();
            fs.close(gathered).unwrap();
        }
    }
}

#[test]
fn aof_store_state_agrees_across_filesystems() {
    let mut sizes = Vec::new();
    for fs in all_filesystems() {
        let mut store =
            AofStore::open(Arc::clone(&fs), "/redis.aof", FsyncPolicy::EveryN(16)).unwrap();
        for i in 0..200 {
            store.set(&format!("k{i}"), &format!("v{i}")).unwrap();
        }
        for i in (0..200).step_by(3) {
            store.del(&format!("k{i}")).unwrap();
        }
        store.shutdown().unwrap();
        // Reopen to force a full AOF replay.
        let store = AofStore::open(Arc::clone(&fs), "/redis.aof", FsyncPolicy::Never).unwrap();
        sizes.push((
            fs.name(),
            store.len(),
            store.get("k1").cloned(),
            store.get("k3").cloned(),
        ));
    }
    let (_, first_len, first_k1, first_k3) = &sizes[0];
    for (name, len, k1, k3) in &sizes {
        assert_eq!(len, first_len, "AOF key count differs on {name}");
        assert_eq!(k1, first_k1, "AOF value differs on {name}");
        assert_eq!(k3, first_k3, "AOF deleted key differs on {name}");
    }
}
