//! Root convenience crate for the SplitFS reproduction workspace.
//!
//! This crate simply re-exports the member crates so that examples and
//! integration tests at the repository root can depend on a single name.
//! The actual implementation lives in the workspace crates:
//!
//! * [`pmem`] — emulated persistent-memory device, persistence semantics,
//!   crash injection and the calibrated cost model.
//! * [`vfs`] — the common `FileSystem` trait every file system implements.
//! * [`kernelfs`] — the ext4-DAX-like kernel file system (K-Split substrate).
//! * [`baselines`] — NOVA (strict/relaxed), PMFS and Strata baselines.
//! * [`splitfs`] — the paper's contribution: the U-Split user-space library
//!   file system with staging files, relink and the operation log.
//! * [`apps`] — LSM key-value store, WAL database and AOF store substrates.
//! * [`workloads`] — YCSB, TPC-C-like, Varmail-like and utility workloads.
//! * [`obs`] — op spans, latency histograms, the crash flight recorder and
//!   the metrics JSON export.

pub use apps;
pub use baselines;
pub use kernelfs;
pub use obs;
pub use pmem;
pub use splitfs;
pub use vfs;
pub use workloads;
